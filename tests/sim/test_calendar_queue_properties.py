"""Oracle-equivalence property suite for the calendar queue.

:class:`~repro.sim.calendar.CalendarQueue` is the fast twin of the
seed binary heap (:class:`~repro.sim.events.EventQueue`); the engine
overhaul is gated on the two being *indistinguishable* through the
queue API.  These properties hammer randomized interleavings of
``push``/``pop``/``cancel``/``peek_time`` — including same-timestamp
bursts, huge and tiny time scales, and rescheduling from inside
running callbacks via the Simulator — and assert the calendar's
observable trace is element-for-element identical to the heap oracle:
same ``(time, seq)`` pop sequence, same peeks, same lengths.

All properties run derandomized (fixed seed profile) so CI failures
reproduce locally.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.calendar import CalendarQueue
from repro.sim.core import QUEUE_BACKENDS, Simulator
from repro.sim.events import EventQueue

PROFILE = settings(max_examples=120, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# op-script strategy
# ----------------------------------------------------------------------

@st.composite
def op_scripts(draw):
    """A randomized queue workload: a list of push/pop/cancel/peek ops.

    Pushed times mix fresh draws with *reuses* of earlier timestamps
    (same-time bursts are where FIFO tie-breaking can go wrong) across
    several magnitudes (sub-millisecond to 1e12 — bucket-width stress).
    """
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    length = draw(st.integers(min_value=20, max_value=250))
    scale = draw(st.sampled_from([1.0, 1e-3, 1e6, 1e12]))
    rng = random.Random(seed)
    ops = []
    times = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.55:
            if times and rng.random() < 0.35:
                t = rng.choice(times)       # same-time burst
            else:
                t = rng.random() * scale
            times.append(t)
            ops.append(("push", t))
        elif roll < 0.75:
            ops.append(("pop",))
        elif roll < 0.9:
            ops.append(("cancel", rng.random()))
        else:
            ops.append(("peek",))
    return ops


def _apply(queue, ops):
    """Run one op script; returns the queue's full observable trace.

    ``pending`` tracks handles that have not been popped or cancelled,
    keyed by seq, so cancels only ever target live events (cancelling a
    popped event is a caller bug on both backends alike).
    """
    trace = []
    pending = {}
    for op in ops:
        if op[0] == "push":
            event = queue.push(op[1], lambda: None)
            pending[event.seq] = event
            trace.append(("len", len(queue)))
        elif op[0] == "pop":
            event = queue.pop()
            if event is None:
                trace.append(("pop", None))
            else:
                pending.pop(event.seq, None)
                trace.append(("pop", event.time, event.seq))
        elif op[0] == "cancel":
            if pending:
                keys = sorted(pending)
                key = keys[int(op[1] * len(keys)) % len(keys)]
                event = pending.pop(key)
                event.cancel()
                queue.note_cancelled()
                trace.append(("len", len(queue)))
        else:
            trace.append(("peek", queue.peek_time()))
    while True:
        event = queue.pop()
        if event is None:
            break
        trace.append(("pop", event.time, event.seq))
    trace.append(("final", len(queue), queue.peek_time()))
    return trace


@PROFILE
@given(op_scripts())
def test_trace_matches_heap_oracle(ops):
    """Identical op scripts yield identical observable traces."""
    assert _apply(CalendarQueue(), ops) == _apply(EventQueue(), ops)


# ----------------------------------------------------------------------
# Simulator-level: rescheduling and cancelling from inside callbacks
# ----------------------------------------------------------------------

def _dynamic_trace(backend, seed, spawn_cap=300):
    """Run a self-rescheduling workload; returns the (time, tag) log.

    Every callback may schedule more events (zero-delay bursts
    included) and cancel a pending one — all driven by one RNG, so two
    backends diverge iff they dispatch events in different orders.
    """
    sim = Simulator(queue=backend)
    rng = random.Random(seed)
    log = []
    pending = {}
    tags = itertools.count()
    spawned = [0]

    def schedule(delay):
        tag = next(tags)
        spawned[0] += 1
        pending[tag] = sim.schedule(delay, make_action(tag))

    def make_action(tag):
        def action():
            pending.pop(tag, None)
            log.append((sim.now, tag))
            if spawned[0] < spawn_cap:
                for _ in range(rng.randrange(3)):
                    delay = 0.0 if rng.random() < 0.25 else rng.uniform(0, 2.0)
                    schedule(delay)
            if pending and rng.random() < 0.3:
                keys = sorted(pending)
                victim = keys[rng.randrange(len(keys))]
                sim.cancel(pending.pop(victim))
        return action

    for _ in range(8):
        schedule(rng.uniform(0, 1.0))
    sim.run()
    return log, sim.processed_events, sim.now


@PROFILE
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_reschedule_from_callbacks_matches_heap(seed):
    """Dispatch order is identical even when callbacks reschedule."""
    assert _dynamic_trace("calendar", seed) == _dynamic_trace("heap", seed)


# ----------------------------------------------------------------------
# directed edges
# ----------------------------------------------------------------------

def test_same_time_burst_pops_fifo():
    queue = CalendarQueue()
    events = [queue.push(1.5, lambda: None) for _ in range(64)]
    queue.push(0.5, lambda: None)
    assert queue.pop().time == 0.5
    for expected in events:
        popped = queue.pop()
        assert (popped.time, popped.seq) == (expected.time, expected.seq)
    assert queue.pop() is None


def test_push_earlier_after_pops_rewinds_cursor():
    """A late push far before the cursor must still pop first."""
    queue = CalendarQueue()
    queue.push(6766.99, lambda: None)
    assert queue.peek_time() == 6766.99
    queue.push(0.25, lambda: None)
    assert queue.pop().time == 0.25
    assert queue.pop().time == 6766.99


def test_cancelled_events_are_skipped_and_uncounted():
    queue = CalendarQueue()
    keep = queue.push(2.0, lambda: None)
    drop = queue.push(1.0, lambda: None)
    drop.cancel()
    queue.note_cancelled()
    assert len(queue) == 1
    assert queue.peek_time() == 2.0
    popped = queue.pop()
    assert popped is keep
    assert queue.pop() is None


def test_resize_preserves_order_across_growth():
    queue = CalendarQueue()
    oracle = EventQueue()
    rng = random.Random(99)
    for _ in range(4000):   # far past every resize trigger
        t = rng.uniform(0, 1e4)
        queue.push(t, lambda: None)
        oracle.push(t, lambda: None)
    while True:
        a, b = queue.pop(), oracle.pop()
        assert (a is None) == (b is None)
        if a is None:
            break
        assert (a.time, a.seq) == (b.time, b.seq)


def test_non_finite_times_rejected():
    queue = CalendarQueue()
    with pytest.raises(SimulationError):
        queue.push(float("nan"), lambda: None)
    # The calendar is stricter than the heap here: infinite times have
    # no bucket year, so they are rejected up front instead of
    # saturating the clock.
    with pytest.raises(SimulationError):
        queue.push(float("inf"), lambda: None)


def test_simulator_rejects_unknown_backend():
    with pytest.raises(SimulationError):
        Simulator(queue="bogus")
    for name in QUEUE_BACKENDS:
        assert Simulator(queue=name).queue_backend == name
