"""Tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(3.0, lambda: fired.append(3))
        q.push(1.0, lambda: fired.append(1))
        q.push(2.0, lambda: fired.append(2))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == [1, 2, 3]

    def test_fifo_for_equal_times(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.push(5.0, lambda i=i: fired.append(i))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == list(range(10))

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)


class TestCancellation:
    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        fired = []
        keep = q.push(1.0, lambda: fired.append("keep"))
        drop = q.push(0.5, lambda: fired.append("drop"))
        drop.cancel()
        q.note_cancelled()
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["keep"]

    def test_len_tracks_live_events(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        b = q.push(2.0, lambda: None)
        assert len(q) == 2
        a.cancel()
        q.note_cancelled()
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        first.cancel()
        q.note_cancelled()
        assert q.peek_time() == 2.0

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert not q
