"""Tests for the trace log."""

import pytest

from repro.sim.trace import TraceLog


class TestTraceLog:
    def test_records_entries(self):
        log = TraceLog()
        log.record(1.0, "send", "a->b")
        log.record(2.0, "drop", "c")
        assert [e.category for e in log.entries()] == ["send", "drop"]

    def test_category_filter(self):
        log = TraceLog()
        log.record(1.0, "send")
        log.record(2.0, "drop")
        log.record(3.0, "send")
        assert len(log.entries("send")) == 2

    def test_counts_survive_capacity_eviction(self):
        log = TraceLog(capacity=2)
        for i in range(10):
            log.record(float(i), "send")
        assert log.count("send") == 10
        assert len(log.entries()) == 2

    def test_disabled_still_counts(self):
        log = TraceLog(enabled=False)
        log.record(1.0, "send")
        assert log.count("send") == 1
        assert log.entries() == []

    def test_categories_sorted(self):
        log = TraceLog()
        log.record(1.0, "zeta")
        log.record(1.0, "alpha")
        assert log.categories() == ["alpha", "zeta"]

    def test_clear(self):
        log = TraceLog()
        log.record(1.0, "send")
        log.clear()
        assert log.count("send") == 0
        assert log.entries() == []

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=-1)

    def test_unknown_category_count_is_zero(self):
        assert TraceLog().count("nothing") == 0


class TestRegistryBridge:
    def test_counters_live_in_a_shared_registry(self):
        from repro.telemetry.registry import Registry

        registry = Registry()
        log = TraceLog(registry=registry)
        log.record(1.0, "send")
        log.record(2.0, "send")
        assert registry.get("trace_events").value_at("send") == 2

    def test_clear_zeroes_the_registry_family(self):
        from repro.telemetry.registry import Registry

        registry = Registry()
        log = TraceLog(registry=registry)
        log.record(1.0, "send")
        log.clear()
        assert registry.get("trace_events").value_at("send", default=0) == 0

    def test_counts_property_deprecated_snapshot(self):
        log = TraceLog()
        log.record(1.0, "send")
        with pytest.warns(DeprecationWarning):
            snapshot = log._counts
        assert snapshot == {"send": 1}
        snapshot["send"] = 99  # a snapshot: not written back
        assert log.count("send") == 1
