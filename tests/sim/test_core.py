"""Tests for the simulator loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.0]

    def test_run_until_lands_on_horizon(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)


class TestRunUntil:
    def test_events_beyond_horizon_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.pending_events == 1
        sim.run_until(10.0)
        assert fired == [1, 5]

    def test_event_at_exact_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(2.0)
        assert fired == [2]

    def test_past_horizon_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)


class TestEventChaining:
    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(1.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 5

    def test_stop_inside_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [(1, None)] or fired == [1]
        assert sim.pending_events == 1

    def test_cancel_pending_event(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.cancel(handle)
        sim.cancel(handle)
        assert sim.pending_events == 0

    def test_max_events_limit(self):
        sim = Simulator()
        count = []

        def recur():
            count.append(1)
            sim.schedule(1.0, recur)

        sim.schedule(0.0, recur)
        sim.run(max_events=10)
        assert len(count) == 10

    def test_reentrancy_guard(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError:
                errors.append(True)

        sim.schedule(1.0, reenter)
        sim.run()
        assert errors == [True]
