"""Tests for periodic processes."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.process import PeriodicProcess


class TestPeriodic:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, period=2.0, action=lambda: ticks.append(sim.now))
        proc.start()
        sim.run_until(7.0)
        assert ticks == [0.0, 2.0, 4.0, 6.0]

    def test_initial_delay(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        proc.start(initial_delay=5.0)
        sim.run_until(7.0)
        assert ticks == [5.0, 6.0, 7.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        proc.start()
        sim.run_until(2.0)
        proc.stop()
        sim.run_until(10.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop_from_inside_action(self):
        sim = Simulator()
        proc_holder = {}

        def action():
            if proc_holder["p"].fired >= 3:
                proc_holder["p"].stop()

        proc = PeriodicProcess(sim, 1.0, action)
        proc_holder["p"] = proc
        proc.start()
        sim.run_until(100.0)
        assert proc.fired == 3
        assert not proc.running

    def test_restart_after_stop(self):
        sim = Simulator()
        proc = PeriodicProcess(sim, 1.0, lambda: None)
        proc.start()
        sim.run_until(1.0)
        proc.stop()
        proc.start()
        sim.run_until(3.0)
        assert proc.fired >= 3

    def test_start_is_idempotent(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        proc.start()
        proc.start()
        sim.run_until(0.0)
        assert ticks == [0.0]


class TestJitter:
    def test_jitter_requires_rng(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Simulator(), 1.0, lambda: None, jitter=0.1)

    def test_jitter_bounds(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(
            sim, 1.0, lambda: ticks.append(sim.now),
            jitter=0.2, rng=random.Random(1),
        )
        proc.start()
        sim.run_until(20.0)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(0.8 <= g <= 1.4 for g in gaps)

    def test_invalid_period(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Simulator(), 0.0, lambda: None)

    def test_negative_jitter(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(
                Simulator(), 1.0, lambda: None, jitter=-1.0,
                rng=random.Random(1),
            )
