"""Tests for the DaTree baseline."""

import random

import pytest

from repro.baselines.datree import DaTreeSystem
from repro.net.energy import Phase
from repro.net.network import WirelessNetwork
from repro.net.packet import Packet, PacketKind
from repro.sim.core import Simulator
from repro.wsan.deployment import plan_deployment
from repro.wsan.system import build_nodes


def build(seed=42, speed=0.0, sensors=200):
    rng = random.Random(seed)
    sim = Simulator()
    network = WirelessNetwork(sim, rng)
    plan = plan_deployment(sensors, 500.0, rng)
    build_nodes(network, plan, rng, sensor_max_speed=speed)
    system = DaTreeSystem(network, plan, rng)
    return sim, network, system


def packet(sim, src):
    return Packet(PacketKind.DATA, 1000, src, None, sim.now, deadline=0.6)


class TestConstruction:
    def test_every_sensor_gets_a_parent(self):
        sim, network, system = build()
        system.build()
        for sensor in system.sensor_ids:
            assert system.parent_of(sensor) is not None

    def test_parent_chain_reaches_actuator(self):
        sim, network, system = build()
        system.build()
        for sensor in system.sensor_ids[:50]:
            current, hops = sensor, 0
            while not network.node(current).is_actuator:
                current = system.parent_of(current)
                hops += 1
                assert hops < 50
            assert network.node(current).is_actuator

    def test_construction_is_cheapest_of_reference_systems(self):
        sim, network, system = build()
        network.set_phase(Phase.CONSTRUCTION)
        system.build()
        # One joint flood: exactly one tx per reached node.
        assert network.energy.tx_packets == 205


class TestDataPlane:
    def test_delivery(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        done = []
        for src in random.Random(1).sample(system.sensor_ids, 30):
            system.send_event(src, packet(sim, src), done.append)
        sim.run_until(5.0)
        assert len(done) == 30

    def test_actuator_source_delivers_immediately(self):
        sim, network, system = build()
        system.build()
        done = []
        system.send_event(0, packet(sim, 0), done.append)
        assert len(done) == 1

    def test_broken_parent_triggers_repair_and_retransmit(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        src = next(
            s for s in system.sensor_ids
            if not network.node(system.parent_of(s)).is_actuator
        )
        network.fail_node(system.parent_of(src))
        done, dropped = [], []
        system.send_event(src, packet(sim, src), done.append, dropped.append)
        sim.run_until(5.0)
        assert system.repairs >= 1
        assert system.retransmissions >= 1
        assert len(done) == 1
        # The retransmitted copy arrives only after the source timeout.
        assert done[0].latency(5.0) >= 0.0

    def test_drop_after_retransmission_budget(self):
        sim, network, system = build(seed=3)
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        src = system.sensor_ids[0]
        # Kill every neighbour so no repair can ever succeed.
        for nb in network.neighbors(src):
            network.fail_node(nb)
        done, dropped = [], []
        system.send_event(src, packet(sim, src), done.append, dropped.append)
        sim.run_until(10.0)
        assert dropped and not done


class TestMaintenance:
    def test_hello_energy_charged(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        sim.run_until(11.0)
        assert network.energy.total(Phase.COMMUNICATION) > 0
        system.stop()

    def test_mobility_triggers_repairs(self):
        sim, network, system = build(speed=4.0)
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        sim.run_until(30.0)
        assert system.repairs > 0
        system.stop()

    def test_static_network_never_repairs(self):
        sim, network, system = build(speed=0.0)
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        sim.run_until(20.0)
        assert system.repairs == 0
        system.stop()
