"""Tests for the D-DEAR baseline."""

import random

import pytest

from repro.baselines.ddear import DDearSystem
from repro.net.energy import Phase
from repro.net.network import WirelessNetwork
from repro.net.packet import Packet, PacketKind
from repro.sim.core import Simulator
from repro.wsan.deployment import plan_deployment
from repro.wsan.system import build_nodes


def build(seed=42, speed=0.0, sensors=200):
    rng = random.Random(seed)
    sim = Simulator()
    network = WirelessNetwork(sim, rng)
    plan = plan_deployment(sensors, 500.0, rng)
    build_nodes(network, plan, rng, sensor_max_speed=speed)
    system = DDearSystem(network, plan, rng)
    return sim, network, system


def packet(sim, src):
    return Packet(PacketKind.DATA, 1000, src, None, sim.now, deadline=0.6)


class TestConstruction:
    def test_heads_form_2hop_dominating_set(self):
        sim, network, system = build()
        system.build()
        head_set = set(system.heads)
        for sensor in system.sensor_ids:
            if sensor in head_set:
                continue
            covered = sensor in system._head_of
            assert covered, f"sensor {sensor} has no head"

    def test_heads_are_sensors(self):
        sim, network, system = build()
        system.build()
        assert all(network.node(h).is_sensor for h in system.heads)

    def test_member_paths_at_most_two_hops(self):
        sim, network, system = build()
        system.build()
        for member, path in system._member_path.items():
            assert 2 <= len(path) <= 3
            assert path[0] == member
            assert path[-1] in set(system.heads)

    def test_heads_have_actuator_paths(self):
        sim, network, system = build()
        system.build()
        with_path = [h for h in system.heads if h in system._head_path]
        assert len(with_path) >= 0.9 * len(system.heads)
        for head in with_path:
            path = system._head_path[head]
            assert path[0] == head
            assert network.node(path[-1]).is_actuator

    def test_construction_energy_between_datree_and_refer(self):
        from repro.baselines.datree import DaTreeSystem
        from repro.core.system import ReferSystem

        energies = {}
        for cls in (DaTreeSystem, DDearSystem, ReferSystem):
            rng = random.Random(42)
            sim = Simulator()
            network = WirelessNetwork(sim, rng)
            plan = plan_deployment(200, 500.0, rng)
            build_nodes(network, plan, rng, sensor_max_speed=0.0)
            system = cls(network, plan, rng)
            network.set_phase(Phase.CONSTRUCTION)
            system.build()
            energies[cls.__name__] = network.energy.total(Phase.CONSTRUCTION)
        assert (
            energies["DaTreeSystem"]
            < energies["DDearSystem"]
            < energies["ReferSystem"]
        )


class TestDataPlane:
    def test_delivery(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        done = []
        for src in random.Random(1).sample(system.sensor_ids, 30):
            system.send_event(src, packet(sim, src), done.append)
        sim.run_until(5.0)
        assert len(done) >= 29
        system.stop()

    def test_head_source_uses_head_leg_only(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        head = next(h for h in system.heads if h in system._head_path)
        done = []
        system.send_event(head, packet(sim, head), done.append)
        sim.run_until(2.0)
        assert len(done) == 1

    def test_head_path_failure_repairs_and_retransmits(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        head = next(
            h for h in system.heads
            if h in system._head_path and len(system._head_path[h]) > 2
        )
        relay = system._head_path[head][1]
        network.fail_node(relay)
        done, dropped = [], []
        system.send_event(head, packet(sim, head), done.append, dropped.append)
        sim.run_until(5.0)
        assert system.repairs >= 1
        assert done or dropped


class TestMaintenance:
    def test_members_reattach_under_mobility(self):
        sim, network, system = build(speed=4.0)
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        sim.run_until(40.0)
        assert system.reattachments > 0
        system.stop()

    def test_static_network_no_repairs(self):
        sim, network, system = build(speed=0.0)
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        sim.run_until(20.0)
        assert system.repairs == 0
        system.stop()
