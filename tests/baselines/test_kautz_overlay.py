"""Tests for the application-layer Kautz-overlay baseline."""

import random

import pytest

from repro.baselines.kautz_overlay import (
    KautzOverlaySystem,
    overlay_dimensions,
)
from repro.errors import ConfigError
from repro.kautz.graph import kautz_node_count
from repro.net.energy import Phase
from repro.net.network import WirelessNetwork
from repro.net.packet import Packet, PacketKind
from repro.sim.core import Simulator
from repro.wsan.deployment import plan_deployment
from repro.wsan.system import build_nodes


def build(seed=42, speed=0.0, sensors=200):
    rng = random.Random(seed)
    sim = Simulator()
    network = WirelessNetwork(sim, rng)
    plan = plan_deployment(sensors, 500.0, rng)
    build_nodes(network, plan, rng, sensor_max_speed=speed)
    system = KautzOverlaySystem(network, plan, rng)
    return sim, network, system


def packet(sim, src):
    return Packet(PacketKind.DATA, 1000, src, None, sim.now, deadline=0.6)


class TestOverlayDimensions:
    def test_largest_fitting_graph(self):
        assert overlay_dimensions(205, degree=3) == 4    # K(3,4)=108
        assert overlay_dimensions(405, degree=3) == 5    # K(3,5)=324
        assert overlay_dimensions(100, degree=2) == 6    # K(2,6)=96

    def test_fits_population(self):
        for population in (50, 100, 200, 400):
            for d in (2, 3):
                k = overlay_dimensions(population, d)
                assert kautz_node_count(d, k) <= population

    def test_too_small_population(self):
        with pytest.raises(ConfigError):
            overlay_dimensions(5, degree=3)


class TestConstruction:
    def test_actuators_are_members(self):
        sim, network, system = build()
        system.build()
        for actuator in system.actuator_ids:
            assert system.kid_of(actuator) is not None

    def test_member_count_matches_graph(self):
        sim, network, system = build()
        system.build()
        assert len(system._node_to_kid) == system.graph.node_count

    def test_most_overlay_edges_have_paths(self):
        sim, network, system = build()
        system.build()
        expected = system.graph.node_count * system.graph.degree
        assert len(system._paths) >= 0.9 * expected

    def test_paths_are_physical_walks(self):
        sim, network, system = build()
        system.build()
        for (src, dst), path in list(system._paths.items())[:50]:
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert network.medium.can_transmit(a, b, sim.now)

    def test_construction_is_most_expensive(self):
        """Kautz-overlay construction dwarfs every other system's."""
        from repro.baselines.datree import DaTreeSystem
        from repro.core.system import ReferSystem

        energies = {}
        for cls in (DaTreeSystem, ReferSystem, KautzOverlaySystem):
            rng = random.Random(42)
            sim = Simulator()
            network = WirelessNetwork(sim, rng)
            plan = plan_deployment(200, 500.0, rng)
            build_nodes(network, plan, rng, sensor_max_speed=0.0)
            system = cls(network, plan, rng)
            network.set_phase(Phase.CONSTRUCTION)
            system.build()
            energies[cls.__name__] = network.energy.total(Phase.CONSTRUCTION)
        assert energies["KautzOverlaySystem"] > 5 * energies["ReferSystem"]
        assert energies["KautzOverlaySystem"] > 5 * energies["DaTreeSystem"]


class TestDataPlane:
    def test_member_source_delivers(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        member = next(
            n for n in system._node_to_kid if network.node(n).is_sensor
        )
        done = []
        system.send_event(member, packet(sim, member), done.append)
        sim.run_until(5.0)
        assert len(done) == 1
        assert network.node(done[0].destination).is_actuator
        system.stop()

    def test_non_member_source_enters_via_member(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        outsider = next(
            s for s in system.sensor_ids if s not in system._node_to_kid
        )
        done, dropped = [], []
        system.send_event(
            outsider, packet(sim, outsider), done.append, dropped.append
        )
        sim.run_until(5.0)
        assert done or dropped   # terminates either way

    def test_delivery_latency_higher_than_refer(self):
        """Topology inconsistency costs delay (Figs 6, 8)."""
        from repro.core.system import ReferSystem

        delays = {}
        for cls in (ReferSystem, KautzOverlaySystem):
            rng = random.Random(42)
            sim = Simulator()
            network = WirelessNetwork(sim, rng)
            plan = plan_deployment(200, 500.0, rng)
            build_nodes(network, plan, rng, sensor_max_speed=0.0)
            system = cls(network, plan, rng)
            system.build()
            network.set_phase(Phase.COMMUNICATION)
            system.start()
            latencies = []
            src_rng = random.Random(7)
            for t in range(30):
                src = src_rng.choice(system.sensor_ids)
                sim.schedule(
                    t * 0.5,
                    lambda s=src: system.send_event(
                        s,
                        packet(sim, s),
                        lambda p: latencies.append(p.latency(sim.now)),
                    ),
                )
            sim.run_until(30.0)
            system.stop()
            delays[cls.__name__] = sum(latencies) / len(latencies)
        assert delays["KautzOverlaySystem"] > 2 * delays["ReferSystem"]

    def test_segment_failure_recovers_via_flood(self):
        sim, network, system = build()
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        # Break one cached path by failing an interior relay.
        key, path = next(
            (k, p) for k, p in system._paths.items() if len(p) > 2
        )
        interior = path[1]
        if network.node(interior).is_actuator:
            pytest.skip("interior is an actuator")
        network.fail_node(interior)
        member = key[0]
        if not network.node(member).usable or not network.node(member).is_sensor:
            pytest.skip("member unusable")
        done, dropped = [], []
        system.send_event(member, packet(sim, member), done.append, dropped.append)
        sim.run_until(10.0)
        assert done or dropped
