"""Tests for the network facade: unicast, multi-hop relay, flooding."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.energy import Phase
from repro.net.mobility import StaticMobility
from repro.net.network import WirelessNetwork
from repro.net.node import Node, NodeRole
from repro.net.packet import Packet, PacketKind
from repro.sim.core import Simulator
from repro.util.geometry import Point


def build_line(count=4, spacing=80.0, seed=1, loss=0.0):
    """A chain of sensors ``spacing`` apart, 100 m range."""
    from repro.net.mac import MacConfig

    sim = Simulator()
    net = WirelessNetwork(
        sim,
        random.Random(seed),
        mac_config=MacConfig(base_loss=loss, contention_loss=0.0),
    )
    for i in range(count):
        net.add_node(
            Node(
                i,
                NodeRole.SENSOR,
                StaticMobility(Point(i * spacing, 0.0)),
                100.0,
            )
        )
    return sim, net


def data_packet(sim, src=0, dst=None, size=1000):
    return Packet(PacketKind.DATA, size, src, dst, sim.now)


class TestUnicast:
    def test_delivery_and_energy(self):
        sim, net = build_line()
        done = []
        net.send(0, 1, data_packet(sim), on_delivered=done.append)
        sim.run_until(1.0)
        assert len(done) == 1
        assert net.energy.tx_packets == 1
        assert net.energy.rx_packets == 1
        assert net.energy.grand_total() == 2.75

    def test_out_of_range_fails_after_timeout(self):
        sim, net = build_line()
        failures = []
        net.send(
            0, 2, data_packet(sim),
            on_failed=lambda pkt, at: failures.append((at, sim.now)),
        )
        sim.run_until(1.0)
        assert failures
        at, when = failures[0]
        assert at == 0
        assert when > 0.0                    # sender burned its timeout
        assert net.energy.tx_packets == 1    # tx charged even on failure
        assert net.energy.rx_packets == 0

    def test_failed_source_fails_immediately(self):
        sim, net = build_line()
        net.node(0).failed = True
        failures = []
        net.send(0, 1, data_packet(sim), on_failed=lambda p, a: failures.append(a))
        sim.run_until(1.0)
        assert failures == [0]
        assert net.energy.tx_packets == 0

    def test_receive_handler_fires(self):
        sim, net = build_line()
        received = []
        net.set_receive_handler(1, received.append)
        net.send(0, 1, data_packet(sim))
        sim.run_until(1.0)
        assert len(received) == 1

    def test_handler_suppressed_for_relay_hops(self):
        sim, net = build_line()
        received = []
        net.set_receive_handler(1, received.append)
        net.send(0, 1, data_packet(sim), deliver_to_handler=False)
        sim.run_until(1.0)
        assert received == []

    def test_hop_recorded(self):
        sim, net = build_line()
        pkt = data_packet(sim)
        net.send(0, 1, pkt)
        sim.run_until(1.0)
        assert pkt.hops == [0]

    def test_mac_loss_exhausts_retries(self):
        sim, net = build_line(loss=1.0)   # every frame lost
        failures = []
        net.send(0, 1, data_packet(sim), on_failed=lambda p, a: failures.append(a))
        sim.run_until(1.0)
        assert failures == [0]


class TestSendAlongPath:
    def test_full_relay(self):
        sim, net = build_line()
        done = []
        net.send_along_path([0, 1, 2, 3], data_packet(sim), on_delivered=done.append)
        sim.run_until(1.0)
        assert len(done) == 1
        assert net.delivered_packets == 1
        # 3 transmissions + 3 receptions
        assert net.energy.grand_total() == 3 * 2.75

    def test_failure_reports_breaking_node(self):
        sim, net = build_line()
        net.node(2).failed = True
        failures = []
        net.send_along_path(
            [0, 1, 2, 3], data_packet(sim),
            on_failed=lambda p, at: failures.append(at),
        )
        sim.run_until(1.0)
        assert failures == [1]

    def test_handler_only_at_destination(self):
        sim, net = build_line()
        seen = {1: [], 2: [], 3: []}
        for node_id in (1, 2, 3):
            net.set_receive_handler(node_id, seen[node_id].append)
        net.send_along_path([0, 1, 2, 3], data_packet(sim))
        sim.run_until(1.0)
        assert seen[1] == [] and seen[2] == []
        assert len(seen[3]) == 1

    def test_single_node_path_is_local_delivery(self):
        sim, net = build_line()
        done = []
        net.send_along_path([0], data_packet(sim), on_delivered=done.append)
        assert len(done) == 1
        assert net.energy.grand_total() == 0.0

    def test_empty_path_rejected(self):
        sim, net = build_line()
        with pytest.raises(NetworkError):
            net.send_along_path([], data_packet(sim))


class TestFlood:
    def test_tree_structure(self):
        sim, net = build_line()
        tree = net.flood(0, ttl=5)
        assert tree[0] == (0, None)
        assert tree[1] == (1, 0)
        assert tree[2] == (2, 1)
        assert tree[3] == (3, 2)

    def test_ttl_bounds_reach(self):
        sim, net = build_line()
        tree = net.flood(0, ttl=2)
        assert 3 not in tree
        assert 2 in tree

    def test_energy_charged_per_forwarder_and_reception(self):
        sim, net = build_line(count=3)
        net.flood(0, ttl=5)
        # All 3 hold the message and forward within ttl: 3 tx.
        # Receptions: every tx heard by each neighbour of the sender:
        # node0 ->1; node1 ->0,2; node2 ->1  == 4 rx.
        assert net.energy.tx_packets == 3
        assert net.energy.rx_packets == 4

    def test_completion_callback_delayed(self):
        sim, net = build_line()
        times = []
        net.flood(0, ttl=5, on_complete=lambda tree: times.append(sim.now))
        sim.run_until(5.0)
        assert times and times[0] > 0.0

    def test_flood_from_failed_source_is_empty(self):
        sim, net = build_line()
        net.node(0).failed = True
        trees = []
        net.flood(0, ttl=5, on_complete=trees.append)
        sim.run_until(1.0)
        assert trees == [{}]

    def test_flood_occupies_forwarder_radios(self):
        sim, net = build_line()
        net.flood(0, ttl=5)
        assert net.node(1).radio_busy_until > 0.0


class TestFloodMulti:
    def test_each_node_has_one_parent_wave(self):
        sim, net = build_line(count=6)
        tree = net.flood_multi([0, 5], ttl=10)
        assert tree[0] == (0, None)
        assert tree[5] == (0, None)
        assert len(tree) == 6
        # Middle nodes adopt the nearer source's wave.
        assert tree[1][1] == 0
        assert tree[4][1] == 5

    def test_tx_count_is_one_per_reached_node(self):
        sim, net = build_line(count=6)
        net.flood_multi([0, 5], ttl=10)
        assert net.energy.tx_packets == 6

    def test_unusable_source_skipped(self):
        sim, net = build_line(count=3)
        net.node(0).failed = True
        tree = net.flood_multi([0, 2], ttl=5)
        assert 0 not in tree
        assert tree[2] == (0, None)


class TestDropAccounting:
    def test_path_failure_is_one_drop(self):
        sim, net = build_line()
        net.node(2).failed = True
        net.send_along_path([0, 1, 2, 3], data_packet(sim))
        sim.run_until(2.0)
        assert net.dropped_packets == 1
        assert net.hop_failures >= 1
        assert net.delivered_packets == 0

    def test_hop_failure_alone_is_not_a_drop(self):
        # A protocol driving send() directly may recover the packet over
        # another path — the facade must not call that an end-to-end drop.
        sim, net = build_line()
        failures = []
        net.send(0, 2, data_packet(sim), on_failed=lambda p, a: failures.append(a))
        sim.run_until(1.0)
        assert failures
        assert net.hop_failures == 1
        assert net.dropped_packets == 0

    def test_delivered_path_counts_no_drops(self):
        sim, net = build_line()
        net.send_along_path([0, 1, 2, 3], data_packet(sim))
        sim.run_until(2.0)
        assert net.delivered_packets == 1
        assert net.dropped_packets == 0
        assert net.hop_failures == 0

    def test_counters_symmetric_over_mixed_outcomes(self):
        sim, net = build_line()
        net.send_along_path([0, 1, 2], data_packet(sim))
        net.node(3).failed = True
        net.send_along_path([1, 2, 3], data_packet(sim, src=1))
        sim.run_until(3.0)
        assert net.delivered_packets == 1
        assert net.dropped_packets == 1


class TestFloodEnergyKind:
    def test_flood_energy_keyed_as_flood(self):
        sim, net = build_line()
        net.flood(0, ttl=5)
        # Forwarder transmissions and receptions both land under the
        # "flood" traffic class — nothing leaks into the default kind.
        assert net.energy.kinds() == {"flood": net.energy.grand_total()}
        assert net.energy.total_by_kind("flood") == net.energy.grand_total()

    def test_flood_multi_matches(self):
        sim, net = build_line(count=6)
        net.flood_multi([0, 5], ttl=10)
        assert net.energy.kinds() == {"flood": net.energy.grand_total()}


class TestFaultApi:
    def test_fail_and_recover(self):
        sim, net = build_line()
        net.fail_node(1)
        assert not net.node(1).usable
        net.recover_node(1)
        assert net.node(1).usable

    def test_phase_switch(self):
        sim, net = build_line()
        net.send(0, 1, data_packet(sim))
        sim.run_until(1.0)
        net.set_phase(Phase.COMMUNICATION)
        net.send(0, 1, data_packet(sim))
        sim.run_until(2.0)
        assert net.energy.total(Phase.CONSTRUCTION) == 2.75
        assert net.energy.total(Phase.COMMUNICATION) == 2.75
