"""Property-based equivalence: grid ``within_range`` == brute-force scan.

The spatial index is only allowed to *prune* — for every deployment,
query point and radius it must return exactly the unit-disk result the
O(n) scan returns, including items sitting exactly on a cell boundary
and exactly on the range limit.  All properties run derandomized
(fixed seed profile) with >= 200 examples so CI failures reproduce.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.net.medium import WirelessMedium
from repro.net.mobility import RandomWaypoint, StaticMobility
from repro.net.node import Node, NodeRole
from repro.net.spatial import SpatialHashGrid, brute_force_within_range
from repro.util.geometry import Point

PROFILE = settings(max_examples=200, deadline=None, derandomize=True)

finite = st.floats(
    min_value=-500.0, max_value=500.0, allow_nan=False, allow_infinity=False
)


@st.composite
def deployments(draw):
    """A cell size plus positions, biased toward cell-boundary points.

    Half the coordinates are exact multiples of the cell size, so
    points land exactly on cell seams and corners — the places where a
    wrong floor/comparison would lose or duplicate items.
    """
    cell = draw(st.floats(min_value=0.5, max_value=120.0,
                          allow_nan=False, allow_infinity=False))
    aligned = st.integers(min_value=-6, max_value=6).map(lambda i: i * cell)
    coord = st.one_of(finite, aligned)
    points = draw(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=60)
    )
    positions = {i: Point(x, y) for i, (x, y) in enumerate(points)}
    return cell, positions


@PROFILE
@given(deployments(), st.tuples(finite, finite),
       st.floats(min_value=0.0, max_value=700.0,
                 allow_nan=False, allow_infinity=False))
def test_within_range_matches_brute_force(deployment, query, radius):
    cell, positions = deployment
    grid = SpatialHashGrid(cell)
    for item_id, point in positions.items():
        grid.insert(item_id, point)
    q = Point(*query)
    assert grid.within_range(q, radius) == brute_force_within_range(
        positions, q, radius
    )


@PROFILE
@given(deployments(), st.integers(min_value=0, max_value=10 ** 6))
def test_exact_range_limit_is_inclusive(deployment, pick_seed):
    """Radius set to the *exact float distance* of one stored point.

    The <= predicate must include that point, in both implementations,
    for arbitrary (not hand-picked) geometry.
    """
    cell, positions = deployment
    if not positions:
        return
    grid = SpatialHashGrid(cell)
    for item_id, point in positions.items():
        grid.insert(item_id, point)
    rng = random.Random(pick_seed)
    target = positions[rng.choice(list(positions))]
    q = Point(
        rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)
    )
    radius = math.hypot(q.x - target.x, q.y - target.y)
    grid_hits = grid.within_range(q, radius)
    assert grid_hits == brute_force_within_range(positions, q, radius)
    assert any(
        positions[item_id] == target for item_id, _ in grid_hits
    )


@st.composite
def churn_ops(draw):
    """Interleaved insert/move/remove/query traffic."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(0, 30),
                          finite, finite),
                st.tuples(st.just("move"), st.integers(0, 30),
                          finite, finite),
                st.tuples(st.just("remove"), st.integers(0, 30),
                          finite, finite),
                st.tuples(st.just("query"), st.integers(0, 30),
                          finite, finite),
            ),
            min_size=1,
            max_size=80,
        )
    )


@PROFILE
@given(st.floats(min_value=0.5, max_value=80.0, allow_nan=False,
                 allow_infinity=False), churn_ops())
def test_churn_keeps_grid_and_oracle_in_lockstep(cell, ops):
    grid = SpatialHashGrid(cell)
    oracle = {}
    for op, item_id, x, y in ops:
        if op == "insert" and item_id not in oracle:
            grid.insert(item_id, Point(x, y))
            oracle[item_id] = Point(x, y)
        elif op == "move" and item_id in oracle:
            grid.move(item_id, Point(x, y))
            oracle[item_id] = Point(x, y)
        elif op == "remove" and item_id in oracle:
            grid.remove(item_id)
            del oracle[item_id]
        elif op == "query":
            q = Point(x, y)
            radius = abs(x) / 2.0 + 1.0
            assert grid.within_range(q, radius) == \
                brute_force_within_range(oracle, q, radius)
    q = Point(0.0, 0.0)
    assert grid.within_range(q, 600.0) == \
        brute_force_within_range(oracle, q, 600.0)
    assert len(grid) == len(oracle)


@st.composite
def mobile_worlds(draw):
    """A mixed static/mobile deployment plus query times."""
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    n_static = draw(st.integers(min_value=1, max_value=8))
    n_mobile = draw(st.integers(min_value=1, max_value=8))
    max_speed = draw(st.floats(min_value=0.0, max_value=30.0,
                               allow_nan=False, allow_infinity=False))
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=40.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=10,
        ).map(sorted)
    )
    return seed, n_static, n_mobile, max_speed, times


def _build_world(seed, n_static, n_mobile, max_speed, use_index):
    area = 300.0
    placer = random.Random(seed)
    medium = WirelessMedium(use_spatial_index=use_index)
    node_id = 0
    for _ in range(n_static):
        pos = Point(placer.uniform(0, area), placer.uniform(0, area))
        medium.add_node(
            Node(node_id, NodeRole.SENSOR, StaticMobility(pos), 100.0)
        )
        node_id += 1
    for _ in range(n_mobile):
        start = Point(placer.uniform(0, area), placer.uniform(0, area))
        mobility = RandomWaypoint(
            start=start, area_side=area, max_speed=max_speed,
            rng=random.Random(placer.randrange(10 ** 9)),
        )
        medium.add_node(Node(node_id, NodeRole.SENSOR, mobility, 100.0))
        node_id += 1
    return medium


@PROFILE
@given(mobile_worlds())
def test_mobile_neighbor_queries_match_brute_medium(world):
    """Grid-backed and brute-force media agree at every waypoint time.

    Both media see identical deterministic mobility (same seeds), so
    any divergence is an index bug, not model noise.
    """
    seed, n_static, n_mobile, max_speed, times = world
    grid_medium = _build_world(seed, n_static, n_mobile, max_speed, True)
    brute_medium = _build_world(seed, n_static, n_mobile, max_speed, False)
    n = n_static + n_mobile
    for now in times:
        for node_id in range(n):
            assert grid_medium.neighbors(node_id, now) == \
                brute_medium.neighbors(node_id, now)
