"""Net-layer determinism goldens, extending the chaos-suite patterns.

Two contracts:

* one seed, one schedule: a fixed small scenario run twice yields
  byte-identical ``RunResult`` metrics (no hidden iteration-order or
  wall-clock dependence anywhere in the medium/index path);
* the spatial index is a pure fast path: the same scenario run through
  the grid-backed medium and the brute-force medium yields
  byte-identical metrics — the index may only change how neighbours
  are *found*, never which neighbours (or in which order) protocols
  see them;
* the recovery stack (:mod:`repro.recovery`) is deterministic and
  strictly opt-in: same seed + ARQ on is byte-identical run-to-run,
  and a fully disabled ``RecoveryConfig`` reproduces the
  ``recovery=None`` flow byte-for-byte;
* telemetry (:mod:`repro.telemetry`) is pure observation: enabling
  the flight recorder and profiler changes no metric by even one ULP,
  and a telemetry-enabled run is itself byte-identical run-to-run.
"""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.recovery import RecoveryConfig
from repro.telemetry import TelemetryConfig

SMALL = ScenarioConfig(
    seed=11,
    sensor_count=40,
    area_side=220.0,
    sim_time=12.0,
    warmup=2.0,
    rate_pps=5.0,
)

#: Every numeric field a run produces; compared with == (exact floats).
METRIC_FIELDS = (
    "throughput_bps",
    "mean_delay_s",
    "comm_energy_j",
    "construction_energy_j",
    "generated",
    "delivered_qos",
    "delivered_total",
    "dropped",
    "flood_comm_energy_j",
)


def metrics_of(result):
    return {name: getattr(result, name) for name in METRIC_FIELDS}


class TestNetDeterminism:
    @pytest.mark.parametrize("system", ["REFER", "DaTree"])
    def test_same_seed_byte_identical_metrics(self, system):
        a = run_scenario(system, SMALL)
        b = run_scenario(system, SMALL)
        assert repr(metrics_of(a)) == repr(metrics_of(b))

    def test_different_seed_different_run(self):
        a = run_scenario("REFER", SMALL)
        b = run_scenario("REFER", SMALL.with_(seed=12))
        assert metrics_of(a) != metrics_of(b)


class TestSpatialIndexTransparency:
    """Grid on vs grid off must be invisible to every metric."""

    @pytest.mark.parametrize("system", ["REFER", "DaTree"])
    def test_grid_and_brute_media_byte_identical(self, system):
        indexed = run_scenario(system, SMALL)
        brute = run_scenario(system, SMALL.with_(spatial_index=False))
        assert repr(metrics_of(indexed)) == repr(metrics_of(brute))

    def test_grid_on_mobile_scenario_byte_identical(self):
        config = SMALL.with_(sensor_max_speed=8.0)
        indexed = run_scenario("REFER", config)
        brute = run_scenario("REFER", config.with_(spatial_index=False))
        assert repr(metrics_of(indexed)) == repr(metrics_of(brute))


class TestRecoveryDeterminism:
    """The self-healing stack must be reproducible and opt-in."""

    def test_arq_on_same_seed_byte_identical(self):
        config = SMALL.with_(recovery=RecoveryConfig())
        a = run_scenario("REFER", config)
        b = run_scenario("REFER", config)
        assert repr(metrics_of(a)) == repr(metrics_of(b))
        assert a.recovery == b.recovery

    def test_disabled_recovery_matches_pre_recovery_flow(self):
        """ARQ/detector/healer all off == the legacy code path exactly.

        A ``RecoveryConfig`` with every layer disabled must not perturb
        a run in any way — no RNG streams consumed, no extra traffic,
        no altered send paths.
        """
        disabled = RecoveryConfig(detector=False, arq=False, heal_can=False)
        legacy = run_scenario("REFER", SMALL)
        gated = run_scenario("REFER", SMALL.with_(recovery=disabled))
        assert repr(metrics_of(legacy)) == repr(metrics_of(gated))
        assert gated.recovery is None

    def test_arq_changes_the_flow_only_when_enabled(self):
        """Sanity: with ARQ on the hop schedule genuinely differs."""
        legacy = run_scenario("REFER", SMALL)
        armed = run_scenario("REFER", SMALL.with_(recovery=RecoveryConfig()))
        assert armed.recovery is not None
        assert metrics_of(legacy) != metrics_of(armed)


class TestTelemetryTransparency:
    """Telemetry observes the run; it must never *be* the run."""

    @pytest.mark.parametrize("system", ["REFER", "DaTree"])
    def test_enabled_telemetry_is_byte_identical(self, system):
        plain = run_scenario(system, SMALL)
        observed = run_scenario(
            system, SMALL.with_(telemetry=TelemetryConfig())
        )
        assert repr(metrics_of(plain)) == repr(metrics_of(observed))
        assert plain.telemetry is None
        assert observed.telemetry is not None

    def test_telemetry_run_reproducible(self):
        config = SMALL.with_(telemetry=TelemetryConfig())
        a = run_scenario("REFER", config)
        b = run_scenario("REFER", config)
        assert repr(metrics_of(a)) == repr(metrics_of(b))
        assert a.telemetry.registry.as_dict() == b.telemetry.registry.as_dict()
        assert (
            a.telemetry.flight.events_recorded
            == b.telemetry.flight.events_recorded
        )

    def test_telemetry_transparent_under_chaos_and_recovery(self):
        from repro.chaos.spec import FaultSpec

        config = SMALL.with_(
            fault_spec=(FaultSpec(kind="rotation", start=4.0),),
            recovery=RecoveryConfig(),
        )
        plain = run_scenario("REFER", config)
        observed = run_scenario(
            "REFER", config.with_(telemetry=TelemetryConfig())
        )
        assert repr(metrics_of(plain)) == repr(metrics_of(observed))
        assert plain.recovery == observed.recovery
        # The attached verdict timeline is exactly the detector's.
        assert len(observed.telemetry.verdicts) == (
            plain.recovery.condemnations + plain.recovery.absolutions
        )
