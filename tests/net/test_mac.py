"""Tests for the contention MAC model."""

import random

import pytest

from repro.net.mac import ContentionMac, MacConfig
from repro.net.medium import WirelessMedium
from repro.net.mobility import StaticMobility
from repro.net.node import Node, NodeRole
from repro.net.packet import Packet, PacketKind
from repro.sim.core import Simulator
from repro.util.geometry import Point


def setup(loss=0.0, contention_loss=0.0):
    sim = Simulator()
    medium = WirelessMedium()
    for i in range(3):
        medium.add_node(
            Node(i, NodeRole.SENSOR, StaticMobility(Point(i * 50.0, 0)), 100.0)
        )
    cfg = MacConfig(base_loss=loss, contention_loss=contention_loss)
    mac = ContentionMac(sim, medium, random.Random(1), cfg)
    return sim, medium, mac


def packet(size=1000):
    return Packet(PacketKind.DATA, size, 0, 1, 0.0)


class TestConfig:
    def test_airtime(self):
        cfg = MacConfig(bitrate_bps=2_000_000)
        assert cfg.airtime(1000) == pytest.approx(0.004)

    def test_broadcast_airtime(self):
        sim, medium, mac = setup()
        assert mac.broadcast_airtime(500) == MacConfig().airtime(500)


class TestTransmit:
    def test_success_without_loss(self):
        sim, medium, mac = setup()
        results = []
        mac.transmit(0, 1, packet(), lambda ok, t: results.append((ok, t)))
        sim.run()
        assert results[0][0] is True
        # Completion includes airtime + processing delay.
        assert results[0][1] >= 0.004

    def test_loss_exhausts_retries(self):
        sim, medium, mac = setup(loss=1.0)
        results = []
        mac.transmit(0, 1, packet(), lambda ok, t: results.append(ok))
        sim.run()
        assert results == [False]

    def test_retries_add_delay(self):
        sim, medium, mac = setup(loss=0.0)
        clean = []
        mac.transmit(0, 1, packet(), lambda ok, t: clean.append(t))
        sim.run()

        sim2, medium2, mac2 = setup(loss=1.0)
        lossy = []
        mac2.transmit(0, 1, packet(), lambda ok, t: lossy.append(t))
        sim2.run()
        assert lossy[0] > clean[0]

    def test_sender_queue_serialises(self):
        """Back-to-back frames from one radio are serialised."""
        sim, medium, mac = setup()
        completions = []
        mac.transmit(0, 1, packet(), lambda ok, t: completions.append(t))
        mac.transmit(0, 1, packet(), lambda ok, t: completions.append(t))
        sim.run()
        assert completions[1] >= completions[0] + MacConfig().airtime(1000)

    def test_busy_neighbors_add_backoff(self):
        sim, medium, mac = setup()
        medium.node(1).radio_busy_until = 100.0   # busy neighbour of 0
        slow = []
        mac.transmit(0, 2, packet(), lambda ok, t: slow.append(t))
        sim.run()

        sim2, medium2, mac2 = setup()
        fast = []
        mac2.transmit(0, 2, packet(), lambda ok, t: fast.append(t))
        sim2.run()
        assert slow[0] > fast[0]

    def test_loss_probability_capped(self):
        sim, medium, mac = setup(loss=0.2, contention_loss=1.0)
        for i in (1, 2):
            medium.node(i).radio_busy_until = 100.0
        # With cap at MacConfig().max_loss the success probability over
        # retries stays meaningfully positive.
        successes = 0
        for _ in range(50):
            results = []
            mac.transmit(0, 1, packet(), lambda ok, t: results.append(ok))
            sim.run()
            successes += bool(results[0])
        assert successes > 25
