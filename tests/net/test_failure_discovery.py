"""Tests for fault injection and flood discovery."""

import random

import pytest

from repro.net.discovery import FloodDiscovery
from repro.net.failure import FaultInjector
from repro.net.mobility import StaticMobility
from repro.net.network import WirelessNetwork
from repro.net.node import Node, NodeRole
from repro.sim.core import Simulator
from repro.util.geometry import Point


def build_grid(side=4, spacing=70.0, seed=1):
    """A side x side grid of sensors with 100 m range."""
    from repro.net.mac import MacConfig

    sim = Simulator()
    net = WirelessNetwork(
        sim,
        random.Random(seed),
        mac_config=MacConfig(base_loss=0.0, contention_loss=0.0),
    )
    for i in range(side):
        for j in range(side):
            net.add_node(
                Node(
                    i * side + j,
                    NodeRole.SENSOR,
                    StaticMobility(Point(i * spacing, j * spacing)),
                    100.0,
                )
            )
    return sim, net


class TestFaultInjector:
    def test_rotation(self):
        sim, net = build_grid()
        injector = FaultInjector(
            net,
            random.Random(5),
            count=lambda: 3,
            eligible=lambda: net.medium.node_ids(),
            period=10.0,
        )
        injector.start()
        sim.run_until(5.0)
        first = injector.faulty_nodes
        assert len(first) == 3
        assert all(not net.node(n).usable for n in first)
        sim.run_until(15.0)
        second = injector.faulty_nodes
        assert len(second) == 3
        # The previous round was recovered.
        for n in first - second:
            assert net.node(n).usable

    def test_construction_emits_deprecation_warning(self):
        sim, net = build_grid()
        with pytest.warns(DeprecationWarning, match="CrashRotationFault"):
            FaultInjector(
                net,
                random.Random(5),
                count=lambda: 2,
                eligible=lambda: net.medium.node_ids(),
            )

    def test_alias_schedule_identical_to_crash_rotation(self):
        """The alias and the chaos model draw the same fault schedule.

        Same seed, same population, same period: every round's failed
        set must match node-for-node (the rotation recovers the whole
        previous set before sampling, so the chaos model's currently-
        failed filter never changes the sample population).
        """
        from repro.chaos.models import CrashRotationFault

        schedules = []
        for cls in (FaultInjector, CrashRotationFault):
            sim, net = build_grid()
            if cls is FaultInjector:
                with pytest.warns(DeprecationWarning):
                    model = cls(
                        net,
                        random.Random(99),
                        count=lambda: 4,
                        eligible=lambda: net.medium.node_ids(),
                        period=10.0,
                    )
            else:
                model = cls(
                    net,
                    random.Random(99),
                    count=lambda: 4,
                    eligible=lambda: net.medium.node_ids(),
                    period=10.0,
                )
            model.start()
            rounds = []
            for horizon in (5.0, 15.0, 25.0, 35.0):
                sim.run_until(horizon)
                rounds.append(sorted(model.faulty_nodes))
            model.stop()
            schedules.append(rounds)
        assert schedules[0] == schedules[1]

    def test_alias_records_fault_events(self):
        """The alias inherits the chaos event log (new capability)."""
        sim, net = build_grid()
        with pytest.warns(DeprecationWarning):
            injector = FaultInjector(
                net,
                random.Random(5),
                count=lambda: 3,
                eligible=lambda: net.medium.node_ids(),
                period=10.0,
            )
        injector.start()
        sim.run_until(15.0)
        kinds = [e.kind for e in injector.events]
        assert "inject" in kinds and "recover" in kinds

    def test_stop_recovers(self):
        sim, net = build_grid()
        injector = FaultInjector(
            net, random.Random(1),
            count=lambda: 2,
            eligible=lambda: net.medium.node_ids(),
        )
        injector.start()
        sim.run_until(1.0)
        assert injector.faulty_nodes
        injector.stop()
        assert not injector.faulty_nodes
        assert all(net.node(n).usable for n in net.medium.node_ids())

    def test_stop_without_recover_leaves_nodes_failed(self):
        sim, net = build_grid()
        injector = FaultInjector(
            net, random.Random(1),
            count=lambda: 2,
            eligible=lambda: net.medium.node_ids(),
        )
        injector.start()
        sim.run_until(1.0)
        broken = injector.faulty_nodes
        assert broken
        injector.stop(recover=False)
        assert injector.faulty_nodes == broken
        assert all(not net.node(n).usable for n in broken)
        sim.run_until(20.0)   # and no later round resurrects them
        assert all(not net.node(n).usable for n in broken)

    def test_count_capped_by_population(self):
        sim, net = build_grid(side=2)
        injector = FaultInjector(
            net, random.Random(1),
            count=lambda: 100,
            eligible=lambda: net.medium.node_ids(),
        )
        injector.start()
        sim.run_until(1.0)
        assert len(injector.faulty_nodes) == 4

    def test_rounds_counter(self):
        sim, net = build_grid()
        injector = FaultInjector(
            net, random.Random(1),
            count=lambda: 1,
            eligible=lambda: net.medium.node_ids(),
            period=5.0,
        )
        injector.start()
        sim.run_until(16.0)
        assert injector.rounds == 4   # t = 0, 5, 10, 15


class TestFloodDiscovery:
    def test_discover_path(self):
        sim, net = build_grid()
        discovery = FloodDiscovery(net)
        paths = []
        discovery.discover_path(0, 15, ttl=10, on_path=paths.append)
        sim.run_until(5.0)
        assert len(paths) == 1
        path = paths[0]
        assert path[0] == 0 and path[-1] == 15
        for a, b in zip(path, path[1:]):
            assert net.medium.can_transmit(a, b, sim.now)

    def test_unreachable_returns_none(self):
        sim, net = build_grid()
        for nb in net.neighbors(15):
            net.fail_node(nb)
        paths = []
        discovery = FloodDiscovery(net)
        discovery.discover_path(0, 15, ttl=10, on_path=paths.append)
        sim.run_until(5.0)
        assert paths == [None]

    def test_ttl_too_small_returns_none(self):
        sim, net = build_grid()
        paths = []
        FloodDiscovery(net).discover_path(0, 15, ttl=2, on_path=paths.append)
        sim.run_until(5.0)
        assert paths == [None]

    def test_discover_nearest(self):
        sim, net = build_grid()
        paths = []
        FloodDiscovery(net).discover_nearest(
            0, targets=[15, 5], ttl=10, on_path=paths.append
        )
        sim.run_until(5.0)
        assert paths[0][-1] == 5   # 5 is closer in hops than 15

    def test_discovery_charges_energy(self):
        sim, net = build_grid()
        FloodDiscovery(net).discover_path(0, 15, ttl=10, on_path=lambda p: None)
        sim.run_until(5.0)
        assert net.energy.grand_total() > 0

    def test_extract_path_static(self):
        tree = {0: (0, None), 1: (1, 0), 2: (2, 1)}
        assert FloodDiscovery.extract_path(tree, 2) == [0, 1, 2]
        assert FloodDiscovery.extract_path(tree, 9) is None

    def test_query_counter(self):
        sim, net = build_grid()
        d = FloodDiscovery(net)
        d.discover_path(0, 1, ttl=3, on_path=lambda p: None)
        d.discover_nearest(0, [1], ttl=3, on_path=lambda p: None)
        assert d.queries == 2
