"""Tests for nodes and the wireless medium."""

import pytest

from repro.errors import NetworkError
from repro.net.medium import WirelessMedium
from repro.net.mobility import StaticMobility
from repro.net.node import Node, NodeRole
from repro.util.geometry import Point


def make_node(node_id, x, y, rng=100.0, role=NodeRole.SENSOR, battery=None):
    return Node(
        node_id, role, StaticMobility(Point(x, y)), rng,
        battery_joules=battery,
    )


class TestNode:
    def test_roles(self):
        assert make_node(1, 0, 0).is_sensor
        assert make_node(2, 0, 0, role=NodeRole.ACTUATOR).is_actuator

    def test_range_checks(self):
        a = make_node(1, 0, 0, rng=100)
        b = make_node(2, 80, 0, rng=50)
        assert a.in_range_of(b, 0.0)        # a's range covers 80m
        assert not b.in_range_of(a, 0.0)    # b's doesn't
        assert not a.bidirectional_link(b, 0.0)

    def test_bidirectional_link(self):
        a = make_node(1, 0, 0, rng=100)
        b = make_node(2, 80, 0, rng=100)
        assert a.bidirectional_link(b, 0.0)

    def test_invalid_range(self):
        with pytest.raises(NetworkError):
            make_node(1, 0, 0, rng=0)

    def test_battery(self):
        n = make_node(1, 0, 0, battery=10.0)
        assert n.battery_fraction == 1.0
        n.drain(5.0)
        assert n.battery_fraction == 0.5
        assert n.usable
        n.drain(5.0)
        assert n.battery_exhausted
        assert not n.usable

    def test_unmetered_battery(self):
        n = make_node(1, 0, 0)
        n.drain(1e9)
        assert n.battery_fraction == 1.0
        assert not n.battery_exhausted

    def test_usable_flags(self):
        n = make_node(1, 0, 0)
        assert n.usable
        n.failed = True
        assert not n.usable
        n.failed = False
        n.asleep = True
        assert not n.usable


class TestMedium:
    def build(self):
        medium = WirelessMedium()
        # line: 0 -(80m)- 1 -(80m)- 2, plus far node 3
        medium.add_node(make_node(0, 0, 0))
        medium.add_node(make_node(1, 80, 0))
        medium.add_node(make_node(2, 160, 0))
        medium.add_node(make_node(3, 1000, 0))
        return medium

    def test_neighbors(self):
        medium = self.build()
        assert set(medium.neighbors(1, 0.0)) == {0, 2}
        assert medium.neighbors(3, 0.0) == []

    def test_duplicate_id_rejected(self):
        medium = self.build()
        with pytest.raises(NetworkError):
            medium.add_node(make_node(0, 5, 5))

    def test_unknown_node(self):
        with pytest.raises(NetworkError):
            self.build().node(99)

    def test_neighbors_exclude_unusable(self):
        medium = self.build()
        medium.node(0).failed = True
        assert medium.neighbors(1, 0.0) == [2]
        assert set(medium.neighbors(1, 0.0, require_usable=False)) == {0, 2}

    def test_cache_invalidation_across_buckets(self):
        medium = self.build()
        assert set(medium.neighbors(1, 0.0)) == {0, 2}
        medium.node(2).failed = True
        # Same bucket: cached (stale by design)...
        assert set(medium.neighbors(1, 0.01)) == {0, 2}
        # ...next bucket sees the change.
        assert medium.neighbors(1, 1.0) == [0]

    def test_can_transmit(self):
        medium = self.build()
        assert medium.can_transmit(0, 1, 0.0)
        assert not medium.can_transmit(0, 2, 0.0)
        medium.node(1).failed = True
        assert not medium.can_transmit(0, 1, 0.0)

    def test_link_quality(self):
        medium = self.build()
        assert medium.link_quality(0, 1, 0.0) == pytest.approx(0.2)
        assert medium.link_quality(0, 3, 0.0) == 0.0

    def test_contention_counts_busy_radios(self):
        medium = self.build()
        assert medium.contention_at(1, 0.0) == 0
        medium.node(0).radio_busy_until = 10.0
        assert medium.contention_at(1, 0.0) == 1

    def test_len_and_contains(self):
        medium = self.build()
        assert len(medium) == 4
        assert 2 in medium
        assert 99 not in medium
