"""Unit tests for the spatial hash grid and its medium integration."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.medium import WirelessMedium
from repro.net.mobility import RandomWaypoint, StaticMobility
from repro.net.node import Node, NodeRole
from repro.net.spatial import SpatialHashGrid, brute_force_within_range
from repro.util.geometry import Point


def make_node(node_id, x, y, rng=100.0, role=NodeRole.SENSOR):
    return Node(node_id, role, StaticMobility(Point(x, y)), rng)


class TestGridBasics:
    def test_insert_query_remove(self):
        grid = SpatialHashGrid(10.0)
        grid.insert(1, Point(0, 0))
        grid.insert(2, Point(5, 5))
        grid.insert(3, Point(100, 100))
        assert len(grid) == 3
        assert 2 in grid and 99 not in grid
        hits = grid.within_range(Point(0, 0), 10.0)
        assert [i for i, _ in hits] == [1, 2]
        grid.remove(2)
        assert [i for i, _ in grid.within_range(Point(0, 0), 10.0)] == [1]

    def test_invalid_cell_size(self):
        with pytest.raises(NetworkError):
            SpatialHashGrid(0.0)

    def test_duplicate_insert_rejected(self):
        grid = SpatialHashGrid(1.0)
        grid.insert(1, Point(0, 0))
        with pytest.raises(NetworkError):
            grid.insert(1, Point(1, 1))

    def test_unknown_remove_and_move_rejected(self):
        grid = SpatialHashGrid(1.0)
        with pytest.raises(NetworkError):
            grid.remove(7)
        with pytest.raises(NetworkError):
            grid.move(7, Point(0, 0))

    def test_negative_radius_rejected(self):
        grid = SpatialHashGrid(1.0)
        with pytest.raises(NetworkError):
            grid.within_range(Point(0, 0), -1.0)

    def test_results_sorted_by_id(self):
        grid = SpatialHashGrid(50.0)
        for item_id in (9, 3, 7, 1):
            grid.insert(item_id, Point(item_id, 0))
        assert [i for i, _ in grid.within_range(Point(0, 0), 50.0)] == [
            1, 3, 7, 9,
        ]

    def test_distances_returned(self):
        grid = SpatialHashGrid(10.0)
        grid.insert(1, Point(3, 4))
        ((_, distance),) = grid.within_range(Point(0, 0), 10.0)
        assert distance == pytest.approx(5.0)


class TestGridBoundaries:
    def test_point_on_cell_boundary_found(self):
        grid = SpatialHashGrid(10.0)
        grid.insert(1, Point(10.0, 0.0))   # exactly on the cell seam
        grid.insert(2, Point(10.0, 10.0))  # exactly on a cell corner
        assert [i for i, _ in grid.within_range(Point(9.0, 1.0), 15.0)] == [
            1, 2,
        ]

    def test_point_exactly_on_range_limit_included(self):
        grid = SpatialHashGrid(5.0)
        grid.insert(1, Point(30.0, 0.0))
        assert grid.within_range(Point(0, 0), 30.0) == [(1, 30.0)]
        assert grid.within_range(Point(0, 0), 29.999999) == []

    def test_negative_coordinates(self):
        grid = SpatialHashGrid(10.0)
        grid.insert(1, Point(-25.0, -25.0))
        grid.insert(2, Point(25.0, 25.0))
        assert [i for i, _ in grid.within_range(Point(-20.0, -20.0), 10.0)] \
            == [1]

    def test_query_disk_larger_than_cell(self):
        # Correctness must not depend on radius <= cell size.
        grid = SpatialHashGrid(3.0)
        for i in range(10):
            grid.insert(i, Point(10.0 * i, 0.0))
        assert [i for i, _ in grid.within_range(Point(0, 0), 45.0)] == [
            0, 1, 2, 3, 4,
        ]


class TestGridMove:
    def test_move_within_cell_does_not_rebucket(self):
        grid = SpatialHashGrid(10.0)
        grid.insert(1, Point(1.0, 1.0))
        grid.move(1, Point(2.0, 2.0))
        assert grid.stats.rebuckets == 0
        assert grid.stats.in_cell_moves == 1
        assert grid.position_of(1) == Point(2.0, 2.0)

    def test_move_across_cells_rebuckets(self):
        grid = SpatialHashGrid(10.0)
        grid.insert(1, Point(1.0, 1.0))
        grid.move(1, Point(25.0, 1.0))
        assert grid.stats.rebuckets == 1
        assert [i for i, _ in grid.within_range(Point(25.0, 0.0), 5.0)] == [1]
        assert grid.within_range(Point(0.0, 0.0), 5.0) == []

    def test_occupancy_snapshot(self):
        grid = SpatialHashGrid(10.0)
        grid.insert(1, Point(1, 1))
        grid.insert(2, Point(2, 2))
        grid.insert(3, Point(55, 55))
        occ = grid.occupancy()
        assert occ.items == 3
        assert occ.occupied_cells == 2
        assert occ.max_per_cell == 2
        assert occ.mean_per_cell == pytest.approx(1.5)

    def test_empty_occupancy(self):
        occ = SpatialHashGrid(1.0).occupancy()
        assert occ.items == 0
        assert occ.max_per_cell == 0
        assert occ.mean_per_cell == 0.0


class TestBruteForceOracle:
    def test_matches_grid_on_random_points(self):
        rng = random.Random(7)
        grid = SpatialHashGrid(20.0)
        positions = {}
        for i in range(300):
            p = Point(rng.uniform(0, 200), rng.uniform(0, 200))
            positions[i] = p
            grid.insert(i, p)
        for _ in range(50):
            q = Point(rng.uniform(0, 200), rng.uniform(0, 200))
            r = rng.uniform(0, 60)
            assert grid.within_range(q, r) == brute_force_within_range(
                positions, q, r
            )


def build_medium(**kwargs):
    medium = WirelessMedium(**kwargs)
    # line: 0 -(80m)- 1 -(80m)- 2, plus far node 3
    medium.add_node(make_node(0, 0, 0))
    medium.add_node(make_node(1, 80, 0))
    medium.add_node(make_node(2, 160, 0))
    medium.add_node(make_node(3, 1000, 0))
    return medium


class TestMediumIndexIntegration:
    def test_grid_built_lazily(self):
        medium = build_medium()
        assert medium.spatial_grid is None
        medium.neighbors(0, 0.0)
        assert medium.spatial_grid is not None
        # Auto cell size = largest transmission range.
        assert medium.spatial_grid.cell_size == 100.0

    def test_explicit_cell_size(self):
        medium = build_medium(cell_size=40.0)
        medium.neighbors(0, 0.0)
        assert medium.spatial_grid.cell_size == 40.0

    def test_disabled_index_uses_brute_scan(self):
        medium = build_medium(use_spatial_index=False)
        assert set(medium.neighbors(1, 0.0)) == {0, 2}
        assert medium.spatial_grid is None
        assert medium.index_stats()["brute_candidates"] == 4

    def test_grid_and_brute_agree(self):
        grid_m = build_medium()
        brute_m = build_medium(use_spatial_index=False)
        for node_id in range(4):
            assert grid_m.neighbors(node_id, 0.0) == brute_m.neighbors(
                node_id, 0.0
            )

    def test_bigger_radio_triggers_rebuild(self):
        medium = build_medium()
        medium.neighbors(0, 0.0)
        assert medium.spatial_grid.cell_size == 100.0
        medium.add_node(make_node(4, 80, 60, rng=250.0))
        assert set(medium.neighbors(4, 0.0)) == {0, 1, 2}
        assert medium.spatial_grid.cell_size == 250.0
        assert medium.index_stats()["grid_rebuilds"] == 2

    def test_mobile_nodes_rebucket_lazily(self):
        medium = WirelessMedium()
        rng = random.Random(3)
        medium.add_node(make_node(0, 100, 100))
        medium.add_node(
            Node(
                1,
                NodeRole.SENSOR,
                RandomWaypoint(
                    start=Point(100, 100), area_side=200.0,
                    max_speed=5.0, rng=rng,
                ),
                100.0,
            )
        )
        assert medium.neighbors(0, 0.0) == [1]
        stats_before = medium.index_stats()
        # Many buckets later the walker has been refreshed every bucket
        # but re-hashed only when it crossed a 100 m cell boundary.
        for step in range(1, 40):
            medium.neighbors(0, step * 0.25)
        stats_after = medium.index_stats()
        refreshed = stats_after["refreshes"] - stats_before["refreshes"]
        rebucketed = stats_after["rebuckets"] - stats_before["rebuckets"]
        assert refreshed == 39
        assert rebucketed < refreshed

    def test_index_stats_report_occupancy(self):
        medium = build_medium()
        medium.neighbors(0, 0.0)
        stats = medium.index_stats()
        assert stats["occupied_cells"] >= 2
        assert stats["max_per_cell"] >= 1
        assert stats["queries"] == 1


class TestAddNodeInvalidation:
    """Regression: a node added mid-bucket must be immediately visible.

    Before the spatial-index PR, ``add_node`` did not invalidate
    ``_neighbor_cache``, so a node added mid-bucket (e.g. vertex
    replacement in ``core/maintenance``) was invisible to neighbour
    queries until the next 0.25 s bucket.
    """

    @pytest.mark.parametrize("use_index", [True, False])
    def test_added_node_visible_same_bucket(self, use_index):
        medium = build_medium(use_spatial_index=use_index)
        assert set(medium.neighbors(1, 0.0)) == {0, 2}
        medium.add_node(make_node(4, 80, 60))
        # Same 0.25 s bucket, later instant: the new node must appear.
        assert set(medium.neighbors(1, 0.01)) == {0, 2, 4}
        assert set(medium.neighbors(4, 0.01)) == {0, 1, 2}

    @pytest.mark.parametrize("use_index", [True, False])
    def test_added_node_visible_at_same_instant(self, use_index):
        medium = build_medium(use_spatial_index=use_index)
        assert set(medium.neighbors(1, 0.0)) == {0, 2}
        medium.add_node(make_node(4, 80, 60))
        assert set(medium.neighbors(1, 0.0)) == {0, 2, 4}
