"""Tests for packets and the energy ledger."""

import pytest

from repro.net.energy import EnergyLedger, EnergyModel, Phase
from repro.net.packet import Packet, PacketKind


def make_packet(**kwargs):
    defaults = dict(
        kind=PacketKind.DATA,
        size_bytes=1000,
        source=1,
        destination=2,
        created_at=0.0,
    )
    defaults.update(kwargs)
    return Packet(**defaults)


class TestPacket:
    def test_uids_unique(self):
        assert make_packet().uid != make_packet().uid

    def test_latency(self):
        p = make_packet(created_at=1.0)
        assert p.latency(3.5) == 2.5

    def test_deadline(self):
        p = make_packet(created_at=0.0, deadline=0.6)
        assert p.within_deadline(0.5)
        assert not p.within_deadline(0.7)

    def test_no_deadline_always_ok(self):
        assert make_packet().within_deadline(1e9)

    def test_hops(self):
        p = make_packet()
        p.record_hop(1)
        p.record_hop(5)
        assert p.hops == [1, 5]
        assert p.hop_count == 2

    def test_clone_keeps_created_at(self):
        p = make_packet(created_at=1.0, deadline=0.6)
        p.record_hop(1)
        clone = p.clone_for_retransmit(now=5.0)
        assert clone.created_at == 1.0
        assert clone.deadline == 0.6
        assert clone.hops == []
        assert clone.uid != p.uid

    def test_clone_copies_meta(self):
        p = make_packet()
        p.meta["x"] = 1
        clone = p.clone_for_retransmit(0.0)
        clone.meta["x"] = 2
        assert p.meta["x"] == 1


class TestEnergyModel:
    def test_paper_defaults(self):
        model = EnergyModel()
        assert model.tx_joules == 2.0
        assert model.rx_joules == 0.75

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(tx_joules=-1)


class TestEnergyLedger:
    def test_phase_split(self):
        ledger = EnergyLedger()
        ledger.charge_tx(1)          # construction by default
        ledger.set_phase(Phase.COMMUNICATION)
        ledger.charge_tx(1)
        ledger.charge_rx(2)
        assert ledger.total(Phase.CONSTRUCTION) == 2.0
        assert ledger.total(Phase.COMMUNICATION) == 2.75
        assert ledger.grand_total() == 4.75

    def test_node_totals(self):
        ledger = EnergyLedger()
        ledger.charge_tx(1)
        ledger.set_phase(Phase.COMMUNICATION)
        ledger.charge_rx(1)
        assert ledger.node_total(1) == 2.75
        assert ledger.node_total(99) == 0.0

    def test_packet_counters(self):
        ledger = EnergyLedger()
        ledger.charge_tx(1, packets=3)
        ledger.charge_rx(2, packets=2)
        assert ledger.tx_packets == 3
        assert ledger.rx_packets == 2

    def test_construction_fraction(self):
        ledger = EnergyLedger()
        assert ledger.construction_fraction() == 0.0
        ledger.charge_tx(1)                      # 2 J construction
        ledger.set_phase(Phase.COMMUNICATION)
        ledger.charge_tx(1)                      # 2 J communication
        assert ledger.construction_fraction() == pytest.approx(0.5)

    def test_custom_model(self):
        ledger = EnergyLedger(EnergyModel(tx_joules=1.0, rx_joules=0.5))
        assert ledger.charge_tx(1) == 1.0
        assert ledger.charge_rx(1) == 0.5

    def test_by_kind_accounting(self):
        ledger = EnergyLedger()
        ledger.charge_tx(1, kind="data")
        ledger.charge_tx(1, kind="probe")
        ledger.charge_rx(2, kind="probe")
        assert ledger.total_by_kind("data") == 2.0
        assert ledger.total_by_kind("probe") == 2.75
        assert ledger.total_by_kind("never") == 0.0
        assert set(ledger.kinds()) == {"data", "probe"}

    def test_kind_totals_sum_to_grand_total(self):
        ledger = EnergyLedger()
        ledger.charge_tx(1, kind="data")
        ledger.set_phase(Phase.COMMUNICATION)
        ledger.charge_rx(2, kind="flood")
        ledger.charge_tx(3, kind="control")
        assert sum(ledger.kinds().values()) == pytest.approx(
            ledger.grand_total()
        )
