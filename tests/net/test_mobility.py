"""Tests for mobility models."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.mobility import RandomWaypoint, StaticMobility
from repro.util.geometry import Point, in_square


class TestStatic:
    def test_never_moves(self):
        m = StaticMobility(Point(3, 4))
        assert m.position(0.0) == Point(3, 4)
        assert m.position(1e6) == Point(3, 4)


class TestRandomWaypoint:
    def test_starts_at_start(self):
        m = RandomWaypoint(Point(10, 10), 100.0, 2.0, random.Random(1))
        assert m.position(0.0) == Point(10, 10)

    def test_zero_speed_is_static(self):
        m = RandomWaypoint(Point(5, 5), 100.0, 0.0, random.Random(1))
        assert m.position(1000.0) == Point(5, 5)

    def test_stays_in_area(self):
        m = RandomWaypoint(Point(50, 50), 100.0, 5.0, random.Random(7))
        for t in range(0, 1000, 7):
            assert in_square(m.position(float(t)), 100.0)

    def test_speed_bounded(self):
        m = RandomWaypoint(Point(50, 50), 100.0, 3.0, random.Random(3))
        prev = m.position(0.0)
        for t in range(1, 200):
            cur = m.position(float(t))
            assert prev.distance_to(cur) <= 3.0 + 1e-6
            prev = cur

    def test_monotone_queries(self):
        """Positions are consistent when queried at increasing times."""
        a = RandomWaypoint(Point(0, 0), 100.0, 2.0, random.Random(9))
        b = RandomWaypoint(Point(0, 0), 100.0, 2.0, random.Random(9))
        coarse = [a.position(float(t)) for t in (10, 20, 30)]
        fine = []
        for t in range(0, 31):
            p = b.position(float(t))
            if t in (10, 20, 30):
                fine.append(p)
        assert coarse == fine

    def test_deterministic_per_seed(self):
        a = RandomWaypoint(Point(0, 0), 100.0, 2.0, random.Random(5))
        b = RandomWaypoint(Point(0, 0), 100.0, 2.0, random.Random(5))
        assert a.position(17.3) == b.position(17.3)

    def test_eventually_moves(self):
        m = RandomWaypoint(Point(50, 50), 100.0, 2.0, random.Random(2))
        assert m.position(30.0) != Point(50, 50)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypoint(Point(0, 0), -1.0, 2.0, random.Random(1))
        with pytest.raises(ValueError):
            RandomWaypoint(Point(0, 0), 10.0, -2.0, random.Random(1))
        with pytest.raises(ValueError):
            RandomWaypoint(
                Point(0, 0), 10.0, 1.0, random.Random(1), min_speed=2.0
            )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0.1, 10.0))
    def test_property_in_bounds(self, seed, speed):
        m = RandomWaypoint(Point(25, 25), 50.0, speed, random.Random(seed))
        for t in (0.0, 13.7, 100.0, 777.7):
            assert in_square(m.position(t), 50.0)
