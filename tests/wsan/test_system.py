"""Tests for the WsanSystem interface and node construction helper."""

import random

import pytest

from repro.net.network import WirelessNetwork
from repro.net.node import NodeRole
from repro.sim.core import Simulator
from repro.wsan.deployment import plan_deployment
from repro.wsan.system import WsanSystem, build_nodes


def build(sensors=50, speed=2.0, battery=None, seed=1):
    rng = random.Random(seed)
    sim = Simulator()
    network = WirelessNetwork(sim, rng)
    plan = plan_deployment(sensors, 500.0, rng)
    build_nodes(
        network, plan, rng,
        sensor_max_speed=speed, battery_joules=battery,
    )
    return sim, network, plan


class TestBuildNodes:
    def test_id_convention(self):
        sim, network, plan = build()
        for i in range(5):
            assert network.node(i).role is NodeRole.ACTUATOR
        for j in range(5, 55):
            assert network.node(j).role is NodeRole.SENSOR

    def test_ranges(self):
        sim, network, plan = build()
        assert network.node(0).transmission_range == 250.0
        assert network.node(10).transmission_range == 100.0

    def test_actuators_are_static(self):
        sim, network, plan = build()
        p0 = network.node(0).position(0.0)
        assert network.node(0).position(100.0) == p0

    def test_sensors_move(self):
        sim, network, plan = build(speed=3.0)
        moved = sum(
            1
            for j in range(5, 55)
            if network.node(j).position(50.0) != network.node(j).position(0.0)
        )
        assert moved > 40

    def test_battery_only_on_sensors(self):
        sim, network, plan = build(battery=100.0)
        assert network.node(0).battery_joules is None
        assert network.node(10).battery_joules == 100.0

    def test_sensor_positions_match_plan(self):
        sim, network, plan = build(speed=0.0)
        for j, expected in enumerate(plan.sensor_positions):
            assert network.node(5 + j).position(0.0) == expected


class _MinimalSystem(WsanSystem):
    name = "minimal"

    def build(self):
        pass

    def start(self):
        pass

    def send_event(self, source_id, packet, on_delivered=None, on_dropped=None):
        if on_delivered is not None:
            on_delivered(packet)


class TestWsanSystemHelpers:
    def test_id_listings(self):
        sim, network, plan = build()
        system = _MinimalSystem(network, plan, random.Random(1))
        assert system.actuator_ids == [0, 1, 2, 3, 4]
        assert system.sensor_ids == list(range(5, 55))

    def test_nearest_actuator(self):
        sim, network, plan = build(speed=0.0)
        system = _MinimalSystem(network, plan, random.Random(1))
        for sensor in system.sensor_ids[:20]:
            nearest = system.nearest_actuator(sensor)
            pos = network.node(sensor).position(0.0)
            best = min(
                system.actuator_ids,
                key=lambda a: network.node(a).position(0.0).distance_to(pos),
            )
            assert nearest == best

    def test_stop_default_is_noop(self):
        sim, network, plan = build()
        system = _MinimalSystem(network, plan, random.Random(1))
        system.stop()   # must not raise
