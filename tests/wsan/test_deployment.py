"""Tests for deployment geometry."""

import math
import random

import pytest

from repro.errors import ConfigError
from repro.util.geometry import Point
from repro.wsan.deployment import (
    Cell,
    plan_deployment,
    quadrant_actuator_positions,
    quadrant_cells,
)


class TestQuadrantLayout:
    def test_five_actuators(self):
        positions = quadrant_actuator_positions(500.0)
        assert len(positions) == 5
        assert positions[0] == Point(250.0, 250.0)

    def test_four_cells(self):
        positions = quadrant_actuator_positions(500.0)
        cells = quadrant_cells(positions)
        assert len(cells) == 4
        assert [c.cid for c in cells] == [1, 2, 3, 4]

    def test_each_cell_is_centre_plus_adjacent_quadrants(self):
        cells = quadrant_cells(quadrant_actuator_positions(500.0))
        for cell in cells:
            assert 0 in cell.actuator_indices
            assert len(set(cell.actuator_indices)) == 3

    def test_cell_edges_within_actuator_range(self):
        """Every pair of actuators in a cell can talk directly (250 m)."""
        positions = quadrant_actuator_positions(500.0)
        for cell in quadrant_cells(positions):
            pts = [positions[i] for i in cell.actuator_indices]
            for a in pts:
                for b in pts:
                    assert a.distance_to(b) <= 250.0

    def test_cells_share_the_centre_actuator(self):
        cells = quadrant_cells(quadrant_actuator_positions(500.0))
        shared = set.intersection(
            *(set(c.actuator_indices) for c in cells)
        )
        assert shared == {0}

    def test_adjacent_cells_share_two_actuators(self):
        cells = quadrant_cells(quadrant_actuator_positions(500.0))
        for a, b in zip(cells, cells[1:]):
            assert len(set(a.actuator_indices) & set(b.actuator_indices)) == 2


class TestPlanDeployment:
    def test_default_plan(self):
        plan = plan_deployment(200, 500.0, random.Random(1))
        assert plan.actuator_count == 5
        assert plan.sensor_count == 200
        assert len(plan.cells) == 4

    def test_sensors_inside_area(self):
        plan = plan_deployment(100, 300.0, random.Random(2))
        for p in plan.sensor_positions:
            assert 0 <= p.x <= 300 and 0 <= p.y <= 300

    def test_deterministic_per_seed(self):
        a = plan_deployment(50, 500.0, random.Random(9))
        b = plan_deployment(50, 500.0, random.Random(9))
        assert a.sensor_positions == b.sensor_positions

    def test_cell_of_point_nearest_centroid(self):
        plan = plan_deployment(10, 500.0, random.Random(1))
        for cell in plan.cells:
            assert plan.cell_of_point(cell.centroid).cid == cell.cid

    def test_can_point_in_unit_square(self):
        plan = plan_deployment(10, 500.0, random.Random(1))
        for cell in plan.cells:
            x, y = cell.can_point(plan.area_side)
            assert 0 <= x < 1 and 0 <= y < 1

    def test_custom_layout(self):
        positions = [Point(0, 0), Point(100, 0), Point(50, 90)]
        plan = plan_deployment(
            20, 200.0, random.Random(1),
            actuator_positions=positions,
            triangles=[(0, 1, 2)],
        )
        assert plan.actuator_count == 3
        assert len(plan.cells) == 1

    def test_custom_layout_requires_triangles(self):
        with pytest.raises(ConfigError):
            plan_deployment(
                20, 200.0, random.Random(1),
                actuator_positions=[Point(0, 0)],
            )

    def test_bad_triangle_rejected(self):
        with pytest.raises(ConfigError):
            plan_deployment(
                20, 200.0, random.Random(1),
                actuator_positions=[Point(0, 0), Point(1, 1)],
                triangles=[(0, 1, 7)],
            )

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            plan_deployment(-1, 500.0, random.Random(1))
        with pytest.raises(ConfigError):
            plan_deployment(10, 0.0, random.Random(1))
