"""Tests for Proposition 3.2's executable form."""

import math
import random

import pytest

from repro.util.geometry import Point
from repro.wsan.connectivity import (
    dirac_satisfied,
    embedding_feasibility,
    hamiltonian_cycle_dirac,
    is_hamiltonian_order,
    proximity_graph,
)


def scatter(n, side, rng):
    return [
        Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)
    ]


class TestProximityGraph:
    def test_edges_symmetric(self):
        positions = scatter(20, 100.0, random.Random(1))
        adjacency = proximity_graph(positions, 40.0)
        for node, neighbors in adjacency.items():
            for nb in neighbors:
                assert node in adjacency[nb]

    def test_range_zero_rejected(self):
        with pytest.raises(Exception):
            proximity_graph([Point(0, 0)], 0.0)

    def test_full_range_is_complete(self):
        positions = scatter(10, 50.0, random.Random(2))
        adjacency = proximity_graph(positions, 1000.0)
        assert all(len(nb) == 9 for nb in adjacency.values())


class TestDirac:
    def test_complete_graph_satisfies(self):
        adjacency = {
            i: {j for j in range(6) if j != i} for i in range(6)
        }
        assert dirac_satisfied(adjacency)

    def test_cycle_graph_fails_for_large_n(self):
        n = 8
        adjacency = {
            i: {(i - 1) % n, (i + 1) % n} for i in range(n)
        }
        assert not dirac_satisfied(adjacency)

    def test_too_small(self):
        assert not dirac_satisfied({0: {1}, 1: {0}})


class TestPalmer:
    def test_complete_graph_cycle(self):
        adjacency = {
            i: {j for j in range(7) if j != i} for i in range(7)
        }
        cycle = hamiltonian_cycle_dirac(adjacency)
        assert cycle is not None
        assert is_hamiltonian_order(adjacency, cycle)

    def test_dirac_random_graphs(self):
        """Whenever Dirac holds, Palmer must find a cycle."""
        rng = random.Random(9)
        found = 0
        for trial in range(20):
            positions = scatter(16, 100.0, random.Random(trial))
            adjacency = proximity_graph(positions, 85.0)
            if not dirac_satisfied(adjacency):
                continue
            found += 1
            cycle = hamiltonian_cycle_dirac(adjacency)
            assert cycle is not None, trial
            assert is_hamiltonian_order(adjacency, cycle)
        assert found > 5   # the range is generous enough for most trials

    def test_disconnected_graph_returns_none(self):
        adjacency = {0: {1}, 1: {0}, 2: {3}, 3: {2}}
        assert hamiltonian_cycle_dirac(adjacency) is None

    def test_verifier_rejects_wrong_orders(self):
        adjacency = {
            i: {j for j in range(5) if j != i} for i in range(5)
        }
        assert not is_hamiltonian_order(adjacency, [0, 1, 2])
        assert not is_hamiltonian_order(adjacency, [0, 1, 2, 3, 3])


class TestProposition32:
    def test_sufficient_range_embeddable(self):
        """r >= 0.8 b with enough nodes => cycle constructible."""
        rng = random.Random(4)
        side = 100.0
        positions = scatter(24, side, rng)
        report = embedding_feasibility(positions, 0.85 * side, side)
        assert report.required_range == pytest.approx(
            side * math.sqrt(2 / math.pi)
        )
        assert report.embeddable

    def test_insufficient_range_usually_fails_dirac(self):
        rng = random.Random(4)
        side = 100.0
        positions = scatter(24, side, rng)
        report = embedding_feasibility(positions, 0.25 * side, side)
        assert not report.dirac_holds

    def test_report_fields(self):
        positions = scatter(12, 50.0, random.Random(1))
        report = embedding_feasibility(positions, 60.0, 50.0)
        assert report.node_count == 12
        assert report.min_degree >= 0
