"""Tests for the awake/sleep duty-cycle manager."""

import pytest

from repro.errors import ConfigError
from repro.wsan.duty_cycle import DutyCycleManager, SensorState


class TestStates:
    def test_all_start_asleep(self):
        duty = DutyCycleManager([1, 2, 3])
        assert duty.sensors(SensorState.SLEEP) == [1, 2, 3]

    def test_activate(self):
        duty = DutyCycleManager([1, 2])
        duty.activate(1)
        assert duty.is_active(1)
        assert duty.state(2) is SensorState.SLEEP

    def test_unknown_sensor(self):
        with pytest.raises(ConfigError):
            DutyCycleManager([1]).state(9)


class TestCandidates:
    def test_register_moves_to_wait(self):
        duty = DutyCycleManager([1, 2])
        duty.activate(1)
        duty.register_candidate(2, active_id=1)
        assert duty.state(2) is SensorState.WAIT
        assert duty.candidates_of(1) == [2]

    def test_active_cannot_be_candidate(self):
        duty = DutyCycleManager([1, 2])
        duty.activate(1)
        duty.activate(2)
        with pytest.raises(ConfigError):
            duty.register_candidate(2, active_id=1)

    def test_unregister_falls_back_to_sleep(self):
        duty = DutyCycleManager([1, 2])
        duty.activate(1)
        duty.register_candidate(2, 1)
        duty.unregister_candidate(2, 1)
        assert duty.state(2) is SensorState.SLEEP

    def test_unregister_keeps_wait_with_other_candidacies(self):
        duty = DutyCycleManager([1, 2, 3])
        duty.activate(1)
        duty.activate(3)
        duty.register_candidate(2, 1)
        duty.register_candidate(2, 3)
        duty.unregister_candidate(2, 1)
        assert duty.state(2) is SensorState.WAIT
        assert duty.candidates_of(3) == [2]

    def test_unregister_unknown_is_noop(self):
        duty = DutyCycleManager([1])
        duty.unregister_candidate(1, 99)
        assert duty.state(1) is SensorState.SLEEP


class TestReplacement:
    def test_replace_swaps_states(self):
        duty = DutyCycleManager([1, 2])
        duty.activate(1)
        duty.register_candidate(2, 1)
        duty.replace(1, 2)
        assert duty.state(1) is SensorState.SLEEP
        assert duty.is_active(2)

    def test_replace_clears_candidacies_of_promoted(self):
        duty = DutyCycleManager([1, 2, 3])
        duty.activate(1)
        duty.register_candidate(2, 1)
        duty.replace(1, 2)
        assert duty.candidates_of(1) == []

    def test_replace_with_active_rejected(self):
        duty = DutyCycleManager([1, 2])
        duty.activate(1)
        duty.activate(2)
        with pytest.raises(ConfigError):
            duty.replace(1, 2)

    def test_activation_after_replacement_cycle(self):
        duty = DutyCycleManager([1, 2])
        duty.activate(1)
        duty.replace(1, 2)
        duty.register_candidate(1, 2)
        duty.replace(2, 1)
        assert duty.is_active(1)
        assert duty.state(2) is SensorState.SLEEP
