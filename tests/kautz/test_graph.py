"""Unit tests for the K(d, k) digraph object."""

import random

import pytest

from repro.errors import KautzError
from repro.kautz.graph import KautzGraph, kautz_edge_count, kautz_node_count
from repro.kautz.strings import KautzString


class TestCounts:
    @pytest.mark.parametrize(
        "d,k,n", [(2, 3, 12), (2, 2, 6), (3, 3, 36), (4, 4, 320), (1, 4, 2)]
    )
    def test_node_count_formula(self, d, k, n):
        assert kautz_node_count(d, k) == n
        assert KautzGraph(d, k).node_count == n

    def test_edge_count_formula(self):
        assert kautz_edge_count(2, 3) == 24
        assert KautzGraph(2, 3).edge_count == 24

    def test_enumeration_matches_count(self):
        g = KautzGraph(3, 3)
        assert len(list(g.nodes())) == g.node_count

    def test_enumeration_is_unique(self):
        g = KautzGraph(2, 4)
        nodes = list(g.nodes())
        assert len(set(nodes)) == len(nodes)

    def test_len(self):
        assert len(KautzGraph(2, 3)) == 12

    def test_invalid_parameters(self):
        with pytest.raises(KautzError):
            KautzGraph(0, 3)
        with pytest.raises(KautzError):
            KautzGraph(2, 0)


class TestIndexing:
    @pytest.mark.parametrize("d,k", [(2, 3), (3, 2), (4, 3), (1, 5)])
    def test_node_at_index_of_roundtrip(self, d, k):
        g = KautzGraph(d, k)
        for i in range(g.node_count):
            assert g.index_of(g.node_at(i)) == i

    def test_node_at_out_of_range(self):
        g = KautzGraph(2, 3)
        with pytest.raises(KautzError):
            g.node_at(12)
        with pytest.raises(KautzError):
            g.node_at(-1)

    def test_index_of_foreign_node(self):
        g = KautzGraph(2, 3)
        with pytest.raises(KautzError):
            g.index_of(KautzString((0, 1), 2))


class TestAdjacency:
    def test_successor_edges_valid(self):
        g = KautzGraph(2, 3)
        for node in g.nodes():
            for succ in g.successors(node):
                assert g.has_edge(node, succ)

    def test_has_edge_negative(self):
        g = KautzGraph(2, 3)
        a = KautzString.parse("012", 2)
        b = KautzString.parse("201", 2)
        assert not g.has_edge(a, b)

    def test_predecessors_are_inverse_of_successors(self):
        g = KautzGraph(2, 3)
        for node in g.nodes():
            for pred in g.predecessors(node):
                assert node in pred.successors()

    def test_in_degree_equals_out_degree_equals_d(self):
        g = KautzGraph(3, 2)
        for node in g.nodes():
            assert len(g.successors(node)) == 3
            assert len(g.predecessors(node)) == 3

    def test_total_edges(self):
        g = KautzGraph(2, 3)
        assert sum(1 for _ in g.edges()) == g.edge_count

    def test_no_self_loops(self):
        g = KautzGraph(2, 2)
        for u, v in g.edges():
            assert u != v

    def test_undirected_neighbors_dedup(self):
        g = KautzGraph(2, 3)
        for node in g.nodes():
            nbrs = g.undirected_neighbors(node)
            assert node not in nbrs
            assert len(set(nbrs)) == len(nbrs)

    def test_membership(self):
        g = KautzGraph(2, 3)
        assert KautzString.parse("012", 2) in g
        assert KautzString.parse("01", 2) not in g
        assert KautzString.parse("012", 3) not in g


class TestGlobalMeasures:
    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2), (3, 3)])
    def test_measured_diameter_equals_k(self, d, k):
        assert KautzGraph(d, k).measured_diameter() == k

    def test_bfs_distance_self(self):
        g = KautzGraph(2, 3)
        node = g.node_at(0)
        assert g.bfs_distance(node, node) == 0

    def test_bfs_distance_neighbor(self):
        g = KautzGraph(2, 3)
        node = g.node_at(0)
        succ = g.successors(node)[0]
        assert g.bfs_distance(node, succ) == 1

    def test_random_node_in_graph(self):
        g = KautzGraph(3, 3)
        rng = random.Random(5)
        for _ in range(50):
            assert g.random_node(rng) in g

    def test_adjacency_materialisation(self):
        g = KautzGraph(2, 2)
        adj = g.adjacency()
        assert len(adj) == g.node_count
        assert all(len(v) == 2 for v in adj.values())

    def test_equality_and_hash(self):
        assert KautzGraph(2, 3) == KautzGraph(2, 3)
        assert KautzGraph(2, 3) != KautzGraph(3, 2)
        assert hash(KautzGraph(2, 3)) == hash(KautzGraph(2, 3))
