"""Cross-cutting property-based tests over the Kautz routing stack.

These hit random (d, k, U, V) combinations rather than fixed graphs,
complementing the exhaustive small-graph tests.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.kautz.disjoint import (
    PathCase,
    disjoint_paths,
    successor_table,
    verify_node_disjoint,
)
from repro.kautz.graph import KautzGraph
from repro.kautz.namespace import kautz_distance, overlap, shortest_path
from repro.kautz.routing import FaultTolerantRouter, greedy_next_hop
from repro.kautz.strings import KautzString


@st.composite
def kautz_pairs(draw):
    """A random (graph, U, V) with U != V."""
    degree = draw(st.integers(min_value=2, max_value=5))
    diameter = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    graph = KautzGraph(degree, diameter)
    u = graph.random_node(rng)
    v = graph.random_node(rng)
    while v == u:
        v = graph.random_node(rng)
    return graph, u, v


@settings(max_examples=120, deadline=None)
@given(kautz_pairs())
def test_table_covers_all_successors_once(pair):
    graph, u, v = pair
    rows = successor_table(u, v)
    assert len(rows) == graph.degree
    assert {r.successor for r in rows} == set(u.successors())


@settings(max_examples=120, deadline=None)
@given(kautz_pairs())
def test_exactly_one_shortest_row_with_correct_length(pair):
    graph, u, v = pair
    shortest = [
        r for r in successor_table(u, v) if r.case is PathCase.SHORTEST
    ]
    assert len(shortest) == 1
    assert shortest[0].predicted_length == kautz_distance(u, v)
    assert shortest[0].successor == greedy_next_hop(u, v)


@settings(max_examples=120, deadline=None)
@given(kautz_pairs())
def test_predicted_lengths_bounded(pair):
    graph, u, v = pair
    k = graph.diameter
    for row in successor_table(u, v):
        assert 1 <= row.predicted_length <= k + 2


@settings(max_examples=60, deadline=None)
@given(kautz_pairs())
def test_disjoint_paths_always_d_and_disjoint(pair):
    graph, u, v = pair
    paths = disjoint_paths(u, v)
    assert len(paths) == graph.degree
    assert verify_node_disjoint(paths)
    for path in paths:
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)


@settings(max_examples=60, deadline=None)
@given(kautz_pairs())
def test_shortest_path_is_the_greedy_path(pair):
    graph, u, v = pair
    path = shortest_path(u, v)
    assert len(path) - 1 == kautz_distance(u, v)
    current = u
    for nxt in path[1:]:
        assert nxt == greedy_next_hop(current, v)
        current = nxt


@settings(max_examples=60, deadline=None)
@given(kautz_pairs(), st.integers(min_value=0, max_value=10**6))
def test_router_with_random_faults_is_loop_free(pair, fault_seed):
    graph, u, v = pair
    rng = random.Random(fault_seed)
    others = [n for n in (graph.random_node(rng) for _ in range(6))
              if n not in (u, v)]
    failed = set(others[:3])
    router = FaultTolerantRouter(is_available=lambda n: n not in failed)
    try:
        result = router.route(u, v)
    except Exception:
        return
    assert result.path[0] == u and result.path[-1] == v
    assert len(set(result.path)) == len(result.path)
    assert not failed.intersection(result.path[1:-1])


@settings(max_examples=120, deadline=None)
@given(kautz_pairs())
def test_overlap_symmetry_relation(pair):
    """L is not symmetric, but the distance triangle bound holds."""
    graph, u, v = pair
    k = graph.diameter
    duv = kautz_distance(u, v)
    dvu = kautz_distance(v, u)
    assert 0 < duv <= k
    assert 0 < dvu <= k
