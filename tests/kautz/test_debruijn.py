"""Tests for the de Bruijn comparison graph (Proposition 3.1)."""

import pytest

from repro.errors import KautzError
from repro.kautz.debruijn import DeBruijnGraph, smallest_debruijn_for
from repro.kautz.graph import KautzGraph, kautz_node_count


class TestStructure:
    def test_counts(self):
        g = DeBruijnGraph(2, 3)
        assert g.node_count == 8
        assert g.edge_count == 16
        assert len(list(g.nodes())) == 8

    def test_successors_include_self_loops(self):
        g = DeBruijnGraph(2, 2)
        assert (0, 0) in g.successors((0, 0))   # de Bruijn has loops

    def test_predecessor_successor_inverse(self):
        g = DeBruijnGraph(3, 2)
        for node in g.nodes():
            for succ in g.successors(node):
                assert node in g.predecessors(succ)

    def test_invalid_parameters(self):
        with pytest.raises(KautzError):
            DeBruijnGraph(0, 2)


class TestDistanceAndDiameter:
    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2)])
    def test_measured_diameter_equals_k(self, d, k):
        assert DeBruijnGraph(d, k).measured_diameter() == k

    def test_distance_formula_matches_bfs(self):
        g = DeBruijnGraph(2, 3)
        from collections import deque

        for u in g.nodes():
            dist = {u: 0}
            queue = deque([u])
            while queue:
                cur = queue.popleft()
                for succ in g.successors(cur):
                    if succ not in dist:
                        dist[succ] = dist[cur] + 1
                        queue.append(succ)
            for v in g.nodes():
                assert g.distance(u, v) == dist[v], (u, v)


class TestProposition31Measured:
    """Kautz fits more nodes than de Bruijn at the same (d, k) —
    measured on the real graphs, not just the formulas."""

    @pytest.mark.parametrize("d,k", [(2, 3), (3, 3), (4, 2)])
    def test_kautz_denser_at_same_diameter(self, d, k):
        kautz = KautzGraph(d, k)
        debruijn = DeBruijnGraph(d, k)
        assert kautz.measured_diameter() == debruijn.measured_diameter() == k
        assert kautz.node_count > debruijn.node_count

    def test_smallest_debruijn_for(self):
        assert smallest_debruijn_for(100, 2) == 7    # 2^7 = 128
        assert smallest_debruijn_for(8, 2) == 3
        with pytest.raises(KautzError):
            smallest_debruijn_for(0, 2)

    def test_kautz_needs_no_more_diameter(self):
        from repro.kautz.analysis import kautz_diameter_for

        for n in (50, 100, 400):
            for d in (2, 3, 4):
                assert kautz_diameter_for(n, d) <= smallest_debruijn_for(n, d)
