"""Tests for sequential vertex colouring (Section III-B1)."""

from hypothesis import given, strategies as st

from repro.kautz.coloring import (
    color_count,
    is_proper_coloring,
    sequential_coloring,
)


class TestTriangle:
    def test_triangle_needs_three_colors(self):
        # The actuator triangle of a REFER cell: 3 mutually adjacent
        # actuators get 3 distinct colours -> KIDs 012, 120, 201.
        adjacency = {"a": ["b", "c"], "b": ["a", "c"], "c": ["a", "b"]}
        colors = sequential_coloring(adjacency)
        assert color_count(colors) == 3
        assert is_proper_coloring(adjacency, colors)


class TestGeneral:
    def test_empty_graph(self):
        assert sequential_coloring({}) == {}
        assert color_count({}) == 0

    def test_isolated_vertices_one_color(self):
        adjacency = {1: [], 2: [], 3: []}
        colors = sequential_coloring(adjacency)
        assert color_count(colors) == 1

    def test_path_graph_two_colors(self):
        adjacency = {0: [1], 1: [2], 2: [3], 3: []}
        colors = sequential_coloring(adjacency, order=[0, 1, 2, 3])
        assert color_count(colors) == 2
        assert is_proper_coloring(adjacency, colors)

    def test_respects_one_way_edge_lists(self):
        # Neighbour relation symmetrised even if listed one-way.
        adjacency = {"x": ["y"], "y": []}
        colors = sequential_coloring(adjacency)
        assert colors["x"] != colors["y"]

    def test_order_determines_assignment(self):
        adjacency = {0: [1], 1: []}
        colors = sequential_coloring(adjacency, order=[1, 0])
        assert colors[1] == 0
        assert colors[0] == 1

    def test_is_proper_rejects_bad_coloring(self):
        adjacency = {"a": ["b"], "b": ["a"]}
        assert not is_proper_coloring(adjacency, {"a": 0, "b": 0})

    @given(st.integers(min_value=2, max_value=30), st.integers(0, 1000))
    def test_random_graphs_properly_colored(self, n, seed):
        import random

        rng = random.Random(seed)
        adjacency = {
            i: [j for j in range(n) if j != i and rng.random() < 0.3]
            for i in range(n)
        }
        colors = sequential_coloring(adjacency)
        assert is_proper_coloring(adjacency, colors)
        assert len(colors) == n

    def test_greedy_bound(self):
        # Greedy uses at most max_degree + 1 colours.
        adjacency = {
            0: [1, 2, 3],
            1: [0, 2],
            2: [0, 1],
            3: [0],
        }
        colors = sequential_coloring(adjacency)
        assert color_count(colors) <= 4
