"""Tests for Theorem 3.8: the d disjoint paths and their lengths.

This file is the empirical proof that the reproduction implements the
paper's central theorem correctly, including the Figure 2 examples and
exhaustive verification against the real digraph.
"""

import itertools

import pytest

from repro.errors import KautzError
from repro.kautz.disjoint import (
    PathCase,
    _canonical_completion,
    disjoint_paths,
    predicted_length_accuracy,
    ranked_successors,
    successor_table,
    verify_node_disjoint,
)
from repro.kautz.graph import KautzGraph
from repro.kautz.namespace import kautz_distance, overlap
from repro.kautz.strings import KautzString


def K(text, d):
    return KautzString.parse(text, d)


class TestPaperFigure2a:
    """K(4,4), U=0123, V=2301: the paper's worked example."""

    U = K("0123", 4)
    V = K("2301", 4)

    def test_overlap_is_two(self):
        assert overlap(self.U, self.V) == 2

    def test_successor_cases(self):
        rows = {str(r.successor): r for r in successor_table(self.U, self.V)}
        assert rows["1230"].case is PathCase.SHORTEST
        assert rows["1230"].predicted_length == 2     # k - l = 4 - 2
        assert rows["1232"].case is PathCase.VIA_V1
        assert rows["1232"].predicted_length == 4     # k
        assert rows["1234"].case is PathCase.OTHER
        assert rows["1234"].predicted_length == 5     # k + 1
        assert rows["1231"].case is PathCase.CONFLICT
        assert rows["1231"].predicted_length == 6     # k + 2

    def test_table_sorted_by_length(self):
        lengths = [r.predicted_length for r in successor_table(self.U, self.V)]
        assert lengths == sorted(lengths)

    def test_conflict_node_forwards_to_2310(self):
        # Proposition 3.7: 1231 must forward to 2310.
        paths = disjoint_paths(self.U, self.V)
        conflict_path = next(p for p in paths if str(p[1]) == "1231")
        assert str(conflict_path[2]) == "2310"

    def test_four_disjoint_paths(self):
        paths = disjoint_paths(self.U, self.V)
        assert len(paths) == 4
        assert verify_node_disjoint(paths)

    def test_realised_lengths_match_theorem(self):
        for row, actual in predicted_length_accuracy(self.U, self.V):
            assert actual == row.predicted_length


class TestPaperFigure2b:
    """K(4,4), U=0123, V1=2311...: the pair with u_{k-l} == v_{l+1}.

    The paper's Figure 2(b) uses V1 with v_3 = 1 = u_2 so that the
    condition u_{k-l} != v_{l+1} fails and no conflict path exists.
    """

    U = K("0123", 4)
    V = K("2314", 4)   # l = 2; v_{l+1} = v_3 = 1 = u_{k-l} = u_2

    def test_condition_fails(self):
        l = overlap(self.U, self.V)
        assert l == 2
        assert self.U[4 - l - 1] == self.V[l] == 1

    def test_no_conflict_case(self):
        cases = {r.case for r in successor_table(self.U, self.V)}
        assert PathCase.CONFLICT not in cases

    def test_in_digit_partition(self):
        # With no conflict, one shortest + maybe via_v1 + rest length k+1.
        rows = successor_table(self.U, self.V)
        shortest = [r for r in rows if r.case is PathCase.SHORTEST]
        assert len(shortest) == 1
        assert shortest[0].predicted_length == 2

    def test_paths_disjoint(self):
        paths = disjoint_paths(self.U, self.V)
        assert len(paths) == 4
        assert verify_node_disjoint(paths)


class TestFigure1Example:
    """The K(2,3) cell of Figure 1: node 102 routes to 201 avoiding 020."""

    def test_alternative_next_hop_is_021(self):
        u, v = K("102", 2), K("201", 2)
        ranked = ranked_successors(u, v, exclude=frozenset({K("020", 2)}))
        assert str(ranked[0]) == "021"


class TestSuccessorTableStructure:
    @pytest.mark.parametrize("d,k", [(2, 3), (3, 3), (4, 2), (2, 4)])
    def test_table_has_d_rows_covering_all_successors(self, d, k):
        g = KautzGraph(d, k)
        nodes = list(g.nodes())
        for u, v in itertools.islice(
            ((a, b) for a in nodes for b in nodes if a != b), 300
        ):
            rows = successor_table(u, v)
            assert len(rows) == d
            assert {r.successor for r in rows} == set(u.successors())

    def test_exactly_one_shortest_row(self):
        g = KautzGraph(3, 3)
        nodes = list(g.nodes())
        for u, v in itertools.islice(
            ((a, b) for a in nodes for b in nodes if a != b), 300
        ):
            shortest = [
                r for r in successor_table(u, v)
                if r.case is PathCase.SHORTEST
            ]
            assert len(shortest) == 1
            assert shortest[0].predicted_length == kautz_distance(u, v)

    def test_self_pair_raises(self):
        u = K("012", 2)
        with pytest.raises(KautzError):
            successor_table(u, u)

    def test_incompatible_pair_raises(self):
        with pytest.raises(KautzError):
            successor_table(K("012", 2), K("012", 3))

    def test_at_most_one_conflict_row(self):
        g = KautzGraph(4, 3)
        nodes = list(g.nodes())
        for u, v in itertools.islice(
            ((a, b) for a in nodes for b in nodes if a != b), 500
        ):
            conflicts = [
                r for r in successor_table(u, v)
                if r.case is PathCase.CONFLICT
            ]
            assert len(conflicts) <= 1


class TestDisjointPathsExhaustive:
    """The theorem's existence claim: d node-disjoint paths for all pairs."""

    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2)])
    def test_all_pairs_have_d_disjoint_paths(self, d, k):
        g = KautzGraph(d, k)
        nodes = list(g.nodes())
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                paths = disjoint_paths(u, v)
                assert len(paths) == d
                assert verify_node_disjoint(paths)

    @pytest.mark.parametrize("d,k", [(2, 3), (3, 3)])
    def test_paths_are_real_walks(self, d, k):
        g = KautzGraph(d, k)
        nodes = list(g.nodes())
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                for path in disjoint_paths(u, v):
                    for a, b in zip(path, path[1:]):
                        assert g.has_edge(a, b)

    def test_shortest_path_is_first(self):
        g = KautzGraph(3, 3)
        nodes = list(g.nodes())
        for u, v in itertools.islice(
            ((a, b) for a in nodes for b in nodes if a != b), 200
        ):
            paths = disjoint_paths(u, v)
            assert len(paths[0]) - 1 == kautz_distance(u, v)


class TestPredictedLengths:
    """Theorem 3.8 length predictions, with the documented deviation.

    Across all pairs the realised disjoint-path length equals the
    predicted one except for pairs with very large overlap (2l >= k),
    where a canonical completion would revisit U and the disjoint
    realisation shifts a case-(3) path to k + 2 (and, symmetrically,
    can shorten a case-(4) path to k - 1).  DESIGN.md documents this.
    """

    @pytest.mark.parametrize("d,k", [(2, 3), (3, 3), (4, 3), (2, 4)])
    def test_lengths_match_or_are_documented_deviation(self, d, k):
        g = KautzGraph(d, k)
        nodes = list(g.nodes())
        mismatch_rows = 0
        total_rows = 0
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                for row, actual in predicted_length_accuracy(u, v):
                    total_rows += 1
                    if actual == row.predicted_length:
                        continue
                    mismatch_rows += 1
                    # Every deviation is the documented one:
                    assert row.case in (PathCase.VIA_V1, PathCase.OTHER)
                    assert 2 * overlap(u, v) >= k
                    assert abs(actual - row.predicted_length) == 2
        # Deviations are rare (<= 4% of rows even in the smallest graphs;
        # measured: 2.3% in K(2,3), 3.3% in K(2,4), 0.5% in K(3,3)).
        assert mismatch_rows <= 0.04 * total_rows

    def test_non_shortest_paths_longer_than_shortest(self):
        g = KautzGraph(3, 3)
        nodes = list(g.nodes())
        for u, v in itertools.islice(
            ((a, b) for a in nodes for b in nodes if a != b), 300
        ):
            paths = disjoint_paths(u, v)
            shortest = len(paths[0])
            assert all(len(p) >= shortest for p in paths)


class TestDegenerateLabels:
    """The module-docstring degenerate cases and the BFS fallback.

    Each case gets a concrete pair exercising it, and the fallback gets
    a sweep proving that every pair whose canonical completion is an
    invalid Kautz walk still realises d node-disjoint paths.
    """

    def test_zero_overlap_has_no_conflict_and_one_shortest(self):
        # l == 0: cases (2)/(3) coincide and u_{k-l} == u_k is not a
        # legal out-digit — one length-k entry, d-1 length-(k+1) entries.
        u, v = K("010", 2), K("121", 2)
        assert overlap(u, v) == 0
        rows = successor_table(u, v)
        assert [r.case for r in rows] == [PathCase.SHORTEST, PathCase.OTHER]
        assert [r.predicted_length for r in rows] == [3, 4]
        paths = disjoint_paths(u, v)
        assert len(paths) == 2
        assert verify_node_disjoint(paths)

    def test_conflict_digit_equal_last_letter_emits_no_conflict_row(self):
        # u_{k-l} == u_k: the conflict successor would repeat the last
        # letter, so no case-(1) entry exists.
        u, v = K("121", 2), K("212", 2)
        l = overlap(u, v)
        assert l == 2
        assert u[3 - l - 1] == u[2]
        cases = [r.case for r in successor_table(u, v)]
        assert PathCase.CONFLICT not in cases
        paths = disjoint_paths(u, v)
        assert len(paths) == 2
        assert verify_node_disjoint(paths)

    def test_v1_equal_shortest_digit_merges_cases_two_and_three(self):
        # v_1 == v_{l+1} with l >= 1: cases (2) and (3) coincide — the
        # shortest classification wins and no via_v1 row appears.
        u, v = K("210", 2), K("101", 2)
        l = overlap(u, v)
        assert l == 2
        assert v[0] == v[l]
        cases = [r.case for r in successor_table(u, v)]
        assert PathCase.VIA_V1 not in cases
        assert PathCase.SHORTEST in cases
        paths = disjoint_paths(u, v)
        assert len(paths) == 2
        assert verify_node_disjoint(paths)

    @pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 3)])
    def test_bfs_fallback_pairs_still_yield_disjoint_paths(self, d, k):
        # Sweep every pair whose canonical completion is invalid (the
        # only situation where the bounded BFS takes over) and check
        # the realised paths are still d, node-disjoint and real walks.
        g = KautzGraph(d, k)
        nodes = list(g.nodes())
        fallback_pairs = 0
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                if all(
                    _canonical_completion(u, v, row) is not None
                    for row in successor_table(u, v)
                ):
                    continue
                fallback_pairs += 1
                paths = disjoint_paths(u, v)
                assert len(paths) == d
                assert verify_node_disjoint(paths)
                for path in paths:
                    for a, b in zip(path, path[1:]):
                        assert g.has_edge(a, b)
        # The degenerate pattern must actually occur, or this test
        # exercises nothing.
        assert fallback_pairs > 0

    def test_known_fallback_pair_routes_through_bfs(self):
        # K(2,3) U=012 V=121: the canonical completion through 120 is
        # an invalid walk, so its path must come from the BFS fallback
        # — and still start at U through that successor.
        u, v = K("012", 2), K("121", 2)
        bad_rows = [
            row
            for row in successor_table(u, v)
            if _canonical_completion(u, v, row) is None
        ]
        assert any(str(row.successor) == "120" for row in bad_rows)
        paths = disjoint_paths(u, v)
        assert verify_node_disjoint(paths)
        via = {str(p[1]) for p in paths}
        assert via == {str(r.successor) for r in successor_table(u, v)}


class TestRankedSuccessors:
    def test_exclusion(self):
        u, v = K("0123", 4), K("2301", 4)
        best = ranked_successors(u, v)[0]
        rest = ranked_successors(u, v, exclude=frozenset({best}))
        assert best not in rest
        assert len(rest) == 3

    def test_order_is_by_predicted_length(self):
        u, v = K("0123", 4), K("2301", 4)
        ranked = ranked_successors(u, v)
        table = successor_table(u, v)
        assert ranked == [r.successor for r in table]
