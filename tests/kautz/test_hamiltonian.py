"""Tests for Hamiltonian cycle construction in Kautz graphs."""

import pytest

from repro.kautz.graph import KautzGraph
from repro.kautz.hamiltonian import (
    eulerian_circuit,
    hamiltonian_cycle,
    is_hamiltonian_cycle,
)


class TestEulerianCircuit:
    @pytest.mark.parametrize("d,k", [(2, 2), (3, 2), (2, 3)])
    def test_circuit_uses_every_edge_once(self, d, k):
        g = KautzGraph(d, k)
        circuit = eulerian_circuit(g)
        assert len(circuit) == g.edge_count + 1
        assert circuit[0] == circuit[-1]
        edges = list(zip(circuit, circuit[1:]))
        assert len(set(edges)) == g.edge_count
        for a, b in edges:
            assert g.has_edge(a, b)


class TestHamiltonianCycle:
    @pytest.mark.parametrize("d,k", [(1, 3), (2, 1), (2, 2), (2, 3), (3, 2), (3, 3), (4, 2)])
    def test_cycle_is_hamiltonian(self, d, k):
        g = KautzGraph(d, k)
        cycle = hamiltonian_cycle(g)
        assert is_hamiltonian_cycle(g, cycle)

    def test_k23_cell_cycle_length(self):
        # The paper's K(2,3) cell has 12 nodes; the embedding needs a
        # 12-cycle through them.
        g = KautzGraph(2, 3)
        cycle = hamiltonian_cycle(g)
        assert len(cycle) == 13


class TestVerifier:
    def test_rejects_short_sequence(self):
        g = KautzGraph(2, 2)
        cycle = hamiltonian_cycle(g)
        assert not is_hamiltonian_cycle(g, cycle[:-2] + [cycle[0]])

    def test_rejects_open_walk(self):
        g = KautzGraph(2, 2)
        cycle = hamiltonian_cycle(g)
        broken = list(cycle)
        broken[-1] = cycle[1]
        assert not is_hamiltonian_cycle(g, broken)

    def test_rejects_repeated_vertex(self):
        g = KautzGraph(2, 2)
        cycle = hamiltonian_cycle(g)
        repeated = [cycle[0]] + cycle[:-1]
        assert not is_hamiltonian_cycle(g, repeated)
