"""Tests for the Section III-A analysis helpers."""

import math

import pytest

from repro.kautz.analysis import (
    cell_coverage_bound,
    debruijn_node_count,
    degree_diameter_table,
    hypercube_diameter,
    kautz_diameter_for,
    max_cell_side,
    min_transmission_range,
    moore_bound,
    moore_bound_ratio,
    satisfies_euler_degree_sum,
)
from repro.kautz.graph import KautzGraph


class TestMooreBound:
    def test_moore_bound_values(self):
        assert moore_bound(2, 3) == 15      # 1 + 2 + 4 + 8
        assert moore_bound(3, 2) == 13      # 1 + 3 + 9
        assert moore_bound(1, 4) == 5

    def test_kautz_approaches_moore_bound_as_k_decreases(self):
        # Section III-B: density increases as k decreases.
        ratios = [moore_bound_ratio(3, k) for k in (5, 4, 3, 2, 1)]
        assert ratios == sorted(ratios)

    def test_ratio_below_one(self):
        for d in (2, 3, 4):
            for k in (2, 3, 4):
                assert 0 < moore_bound_ratio(d, k) < 1


class TestLemma31:
    @pytest.mark.parametrize("d,k", [(2, 3), (3, 2), (4, 4), (1, 3)])
    def test_euler_degree_sum_equality(self, d, k):
        assert satisfies_euler_degree_sum(KautzGraph(d, k))


class TestProposition31:
    """Kautz beats de Bruijn and hypercube on diameter at equal size."""

    def test_kautz_no_worse_than_debruijn(self):
        for d in (2, 3, 4):
            for n in (50, 200, 1000):
                kautz_k = kautz_diameter_for(n, d)
                db_k = 1
                while debruijn_node_count(d, db_k) < n:
                    db_k += 1
                assert kautz_k <= db_k

    def test_kautz_no_worse_than_hypercube(self):
        for n in (64, 256, 1024):
            for d in (2, 3, 4):
                assert kautz_diameter_for(n, d) <= hypercube_diameter(n) + 1

    def test_table_structure(self):
        table = degree_diameter_table(200, [2, 3])
        assert set(table) == {2, 3}
        assert set(table[2]) == {"kautz", "debruijn", "hypercube"}

    def test_kautz_diameter_for_is_tight(self):
        from repro.kautz.graph import kautz_node_count

        k = kautz_diameter_for(200, 2)
        assert kautz_node_count(2, k) >= 200
        assert k == 1 or kautz_node_count(2, k - 1) < 200


class TestProposition32:
    def test_constant_is_approximately_08(self):
        # r >= b * sqrt(2/pi) ≈ 0.7979 b, rounded to 0.8 in the paper.
        assert min_transmission_range(1.0) == pytest.approx(0.7979, abs=1e-3)

    def test_range_scales_linearly(self):
        assert min_transmission_range(500.0) == pytest.approx(
            500.0 * math.sqrt(2.0 / math.pi)
        )

    def test_inverse_relationship(self):
        r = 100.0
        b = max_cell_side(r)
        assert min_transmission_range(b) == pytest.approx(r)

    def test_coverage_bound(self):
        # (2r + b) with b = r*sqrt(pi/2) ≈ 3.25 r (the paper's 13r/4).
        assert cell_coverage_bound(100.0) == pytest.approx(325.0, rel=0.01)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            min_transmission_range(0.0)
        with pytest.raises(ValueError):
            max_cell_side(-1.0)
