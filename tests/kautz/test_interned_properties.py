"""Oracle-equivalence properties for interned integer Kautz IDs.

:class:`~repro.kautz.interned.InternedKautzSpace` is the fast twin of
per-call Kautz string math; the engine overhaul is gated on its tables
agreeing *exactly* with the string oracle.  These properties draw
random ``K(d <= 5, k <= 4)`` spaces and assert:

* the ID mapping is a bijection onto the enumerated label space;
* successor/predecessor ID rows agree with ``KautzString`` adjacency,
  element-for-element and in the same (ascending-letter) order;
* memoized Theorem 3.8 tables equal :func:`successor_table` rows with
  successors replaced by their interned instances (``is``-identical to
  the canonical nodes);
* memoized distances equal :func:`kautz_distance`;
* the fault-tolerant router on interned tables routes byte-identically
  to the string-backed router under random failure sets — same paths,
  same detour counts, and failures (when greedy hop-by-hop strands
  itself) in exactly the same situations.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KautzError, RoutingError
from repro.kautz.disjoint import disjoint_paths, successor_table, verify_node_disjoint
from repro.kautz.interned import InternedKautzSpace
from repro.kautz.namespace import kautz_distance
from repro.kautz.routing import FaultTolerantRouter
from repro.kautz.strings import KautzString

PROFILE = settings(max_examples=100, deadline=None, derandomize=True)

#: (degree, k) pairs small enough to enumerate in a unit test.
_PARAMS = [
    (d, k)
    for d in range(2, 6)
    for k in range(1, 5)
    if (d + 1) * d ** (k - 1) <= 1000
]


@st.composite
def space_and_pair(draw):
    """A random space plus a random (u, v) node pair with u != v."""
    degree, k = draw(st.sampled_from([p for p in _PARAMS if p[1] >= 2]))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    space = InternedKautzSpace.for_params(degree, k)
    rng = random.Random(seed)
    uid = rng.randrange(space.size)
    vid = rng.randrange(space.size)
    while vid == uid:
        vid = rng.randrange(space.size)
    return space, space.node_of(uid), space.node_of(vid)


@pytest.mark.parametrize("degree,k", _PARAMS)
def test_id_mapping_is_a_dense_bijection(degree, k):
    space = InternedKautzSpace.for_params(degree, k)
    assert space.size == (degree + 1) * degree ** (k - 1)
    seen = set()
    for nid, node in enumerate(space.nodes):
        assert space.id_of(node) == nid
        assert space.node_of(nid) is node
        assert space.intern(KautzString(node.letters, degree)) is node
        seen.add(node.letters)
    assert len(seen) == space.size


@pytest.mark.parametrize("degree,k", _PARAMS)
def test_adjacency_ids_match_string_oracle(degree, k):
    space = InternedKautzSpace.for_params(degree, k)
    for nid, node in enumerate(space.nodes):
        expected_succ = [space.id_of(s) for s in node.successors()]
        expected_pred = [space.id_of(p) for p in node.predecessors()]
        assert list(space.successors(nid)) == expected_succ
        assert list(space.predecessors(nid)) == expected_pred


@PROFILE
@given(space_and_pair())
def test_tables_match_string_oracle(triple):
    space, u, v = triple
    oracle_rows = successor_table(u, v)
    rows = space.table(u, v)
    assert list(rows) == list(oracle_rows)
    for row in rows:
        # Interned rows hand back the canonical instances.
        assert space.intern(row.successor) is row.successor
    # Memoization returns the same tuple, and the by-ID accessor too.
    assert space.table(u, v) is rows
    assert space.table_by_id(space.id_of(u), space.id_of(v)) is rows


@PROFILE
@given(space_and_pair())
def test_distances_match_string_oracle(triple):
    space, u, v = triple
    assert space.distance(u, v) == kautz_distance(u, v)
    assert space.distance_by_id(
        space.id_of(u), space.id_of(v)
    ) == kautz_distance(u, v)
    assert space.distance(u, u) == 0


@PROFILE
@given(space_and_pair())
def test_router_parity_under_random_faults(triple):
    """Interned and string routers make identical decisions."""
    space, u, v = triple
    rng = random.Random(hash(u.letters + v.letters + (space.degree,)) & 0xFFFF_FFFF)
    candidates = [
        n for n in space.nodes if n not in (u, v)
    ]
    dead = set(rng.sample(candidates, min(space.degree - 1, len(candidates))))
    available = lambda node: node not in dead
    plain = FaultTolerantRouter(is_available=available)
    interned = FaultTolerantRouter(is_available=available, use_interned=True)
    try:
        result_plain = plain.route(u, v)
    except RoutingError:
        # Hop-by-hop greedy can strand itself behind its visited set;
        # the contract here is *parity*: the interned router must fail
        # in exactly the same situations.
        with pytest.raises(RoutingError):
            interned.route(u, v)
        return
    result_interned = interned.route(u, v)
    assert result_interned.path == result_plain.path
    assert result_interned.detours == result_plain.detours
    assert result_interned.delivered


@PROFILE
@given(space_and_pair())
def test_disjoint_paths_consistent_with_interned_tables(triple):
    """Theorem 3.8 path bundles line up with the interned table rows."""
    space, u, v = triple
    paths = disjoint_paths(u, v)
    assert verify_node_disjoint(paths)
    rows = space.table(u, v)
    # One table row per disjoint path, same first hops in table order.
    assert [p[1] for p in paths] == [row.successor for row in rows]


def test_unknown_node_rejected():
    space = InternedKautzSpace.for_params(2, 3)
    with pytest.raises(KautzError):
        space.id_of(KautzString((0, 1, 2, 0), 3))


def test_oversized_space_rejected():
    with pytest.raises(KautzError):
        InternedKautzSpace(9, 7)


def test_for_params_caches_one_space_per_shape():
    assert InternedKautzSpace.for_params(2, 3) is InternedKautzSpace.for_params(2, 3)
