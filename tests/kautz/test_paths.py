"""Tests for simple-path enumeration."""

import pytest

from repro.errors import KautzError
from repro.kautz.disjoint import disjoint_paths
from repro.kautz.namespace import kautz_distance
from repro.kautz.paths import (
    count_simple_paths,
    longest_simple_path,
    simple_paths,
)
from repro.kautz.strings import KautzString


def K(text, d=2):
    return KautzString.parse(text, d)


class TestSimplePaths:
    def test_paths_are_simple_and_valid(self):
        for path in simple_paths(K("012"), K("201"), max_length=6):
            assert len(set(path)) == len(path)
            for a, b in zip(path, path[1:]):
                assert b in a.successors()
            assert path[0] == K("012") and path[-1] == K("201")

    def test_shortest_path_included(self):
        u, v = K("012"), K("201")
        lengths = [
            len(p) - 1 for p in simple_paths(u, v, max_length=6)
        ]
        assert min(lengths) == kautz_distance(u, v)

    def test_trivial_pair(self):
        u = K("012")
        paths = list(simple_paths(u, u, max_length=3))
        assert paths == [[u]]

    def test_max_length_zero(self):
        assert list(simple_paths(K("012"), K("201"), 0)) == []

    def test_incompatible_rejected(self):
        with pytest.raises(KautzError):
            list(simple_paths(K("012", 2), K("012", 3), 3))
        with pytest.raises(KautzError):
            list(simple_paths(K("012"), K("201"), -1))

    def test_disjoint_paths_are_among_simple_paths(self):
        u, v = K("0123", 4), K("2301", 4)
        enumerated = {
            tuple(p) for p in simple_paths(u, v, max_length=6)
        }
        for path in disjoint_paths(u, v):
            assert tuple(path) in enumerated

    def test_count(self):
        u, v = K("012"), K("201")
        assert count_simple_paths(u, v, 6) == len(
            list(simple_paths(u, v, 6))
        )


class TestLongestPath:
    def test_longer_than_shortest(self):
        u, v = K("012"), K("201")
        longest = longest_simple_path(u, v, max_length=8)
        assert longest is not None
        assert len(longest) - 1 > kautz_distance(u, v)

    def test_embedding_paths_are_length_k(self):
        """The embedding's actuator connection paths (length 3 in
        K(2,3)) exist among the simple paths of that length."""
        from repro.core.embedding import connection_path

        path = connection_path(K("201"), K("012"))
        candidates = [
            p
            for p in simple_paths(K("201"), K("012"), 3)
            if len(p) == 4
        ]
        assert path in candidates

    def test_unreachable_with_budget_returns_none(self):
        u, v = K("010"), K("121")   # distance 3
        assert longest_simple_path(u, v, max_length=2) is None

    def test_default_budget_is_hamiltonian_bound(self):
        u, v = K("01", 2), K("12", 2)   # K(2,2): 6 nodes
        longest = longest_simple_path(u, v)
        assert longest is not None
        assert len(longest) <= 6
