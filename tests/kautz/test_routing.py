"""Tests for the greedy shortest protocol and the fault-tolerant router."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.kautz.disjoint import successor_table
from repro.kautz.graph import KautzGraph
from repro.kautz.namespace import kautz_distance
from repro.kautz.routing import (
    FaultTolerantRouter,
    RouteResult,
    greedy_next_hop,
    greedy_path,
    route_generation_paths,
)
from repro.kautz.strings import KautzString


def K(text, d=2):
    return KautzString.parse(text, d)


class TestGreedy:
    def test_next_hop_reduces_distance(self):
        g = KautzGraph(3, 3)
        for u in g.nodes():
            for v in g.nodes():
                if u == v:
                    continue
                nxt = greedy_next_hop(u, v)
                assert kautz_distance(nxt, v) == kautz_distance(u, v) - 1

    def test_next_hop_at_destination_raises(self):
        with pytest.raises(RoutingError):
            greedy_next_hop(K("012"), K("012"))

    def test_greedy_path_terminates_at_destination(self):
        path = greedy_path(K("010"), K("201"))
        assert path[-1] == K("201")


class TestFaultTolerantRouterNoFailures:
    def test_routes_along_shortest_path(self):
        router = FaultTolerantRouter(is_available=lambda n: True)
        result = router.route(K("0123", 4), K("2301", 4))
        assert result.delivered
        assert result.detours == 0
        assert result.hops == 2

    def test_route_to_self(self):
        router = FaultTolerantRouter(is_available=lambda n: True)
        result = router.route(K("012"), K("012"))
        assert result.hops == 0
        assert result.delivered

    @pytest.mark.parametrize("d,k", [(2, 3), (3, 3)])
    def test_all_pairs_shortest_without_faults(self, d, k):
        g = KautzGraph(d, k)
        router = FaultTolerantRouter(is_available=lambda n: True)
        nodes = list(g.nodes())
        for u in nodes:
            for v in nodes:
                result = router.route(u, v)
                assert result.hops == kautz_distance(u, v)


class TestFaultTolerantRouterWithFailures:
    def test_paper_example_failure_of_1230(self):
        # Figure 2(a): if 1230 fails, 0123 picks 1232 (second shortest).
        failed = {K("1230", 4)}
        router = FaultTolerantRouter(is_available=lambda n: n not in failed)
        result = router.route(K("0123", 4), K("2301", 4))
        assert result.delivered
        assert str(result.path[1]) == "1232"
        assert result.detours >= 1

    def test_second_failure_falls_to_third_path(self):
        failed = {K("1230", 4), K("1232", 4)}
        router = FaultTolerantRouter(is_available=lambda n: n not in failed)
        result = router.route(K("0123", 4), K("2301", 4))
        assert result.delivered
        assert str(result.path[1]) == "1234"

    def test_destination_always_available(self):
        # A "failed" destination must still terminate the route: the
        # router never availability-checks the destination itself.
        dest = K("201")
        router = FaultTolerantRouter(is_available=lambda n: n != dest)
        result = router.route(K("012"), dest)
        assert result.delivered

    @pytest.mark.parametrize("d,k", [(3, 3), (4, 2)])
    def test_survives_up_to_d_minus_1_faults(self, d, k):
        """d-connectivity: any d-1 faulty relays leave a route."""
        g = KautzGraph(d, k)
        rng = random.Random(99)
        nodes = list(g.nodes())
        router_pairs = rng.sample(
            [(a, b) for a in nodes for b in nodes if a != b], 60
        )
        for u, v in router_pairs:
            others = [n for n in nodes if n not in (u, v)]
            failed = set(rng.sample(others, d - 1))
            router = FaultTolerantRouter(
                is_available=lambda n: n not in failed
            )
            result = router.route(u, v)
            assert result.delivered
            assert not any(n in failed for n in result.path)

    def test_route_raises_when_all_successors_dead(self):
        u = K("012")
        dead = set(u.successors())
        router = FaultTolerantRouter(is_available=lambda n: n not in dead)
        with pytest.raises(RoutingError):
            router.route(u, K("201"))

    def test_max_hops_enforced(self):
        router = FaultTolerantRouter(
            is_available=lambda n: True, max_hops=1
        )
        with pytest.raises(RoutingError):
            router.route(K("010"), K("121"))  # distance 3 > 1

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_fault_patterns_never_loop(self, seed):
        """Whatever fails, the router either delivers or raises — no loops."""
        rng = random.Random(seed)
        g = KautzGraph(3, 3)
        nodes = list(g.nodes())
        u, v = rng.sample(nodes, 2)
        failed = set(
            rng.sample([n for n in nodes if n not in (u, v)], rng.randint(0, 8))
        )
        router = FaultTolerantRouter(is_available=lambda n: n not in failed)
        try:
            result = router.route(u, v)
        except RoutingError:
            return
        assert result.path[0] == u and result.path[-1] == v
        assert len(set(result.path)) == len(result.path)


class TestRouteGenerationBaseline:
    """The DFTR-style baseline used by the ablation bench."""

    def test_finds_d_paths(self):
        paths = route_generation_paths(K("0123", 4), K("2301", 4))
        assert len(paths) == 4

    def test_paths_valid_and_disjoint_interiors(self):
        g = KautzGraph(3, 3)
        u, v = K("012", 3), K("301", 3)
        paths = route_generation_paths(u, v)
        interiors = []
        for path in paths:
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)
            interiors.extend(path[1:-1])
        assert len(set(interiors)) == len(interiors)

    def test_trivial_pair(self):
        u = K("012")
        assert route_generation_paths(u, u) == [[u]]

    def test_first_path_is_shortest(self):
        u, v = K("0123", 4), K("2301", 4)
        paths = route_generation_paths(u, v)
        assert len(paths[0]) - 1 == kautz_distance(u, v)
