"""Property-based Theorem 3.8 checks on random K(d, 3) pairs.

The exhaustive suite (``test_disjoint.py``) proves the theorem on the
small graphs the paper uses; these properties hammer random pairs in
K(d, 3) for d up to 5 — the diameter REFER's cells actually run with —
asserting the three claims the routing protocol leans on:

* the d constructed U→V paths are pairwise *vertex*-disjoint,
* every consecutive pair along every path is a real Kautz edge,
* realised lengths follow the theorem's closed forms
  (k - l / k / k + 1 / k + 2 per case), with the documented
  heavy-overlap deviation (2l >= k, DESIGN.md) of exactly +-2 confined
  to case-(3)/(4) rows.

All properties run derandomized (fixed seed profile) with >= 200
examples each.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.kautz.disjoint import (
    PathCase,
    disjoint_paths,
    predicted_length_accuracy,
    successor_table,
    verify_node_disjoint,
)
from repro.kautz.namespace import kautz_distance, overlap
from repro.kautz.strings import KautzString

PROFILE = settings(max_examples=200, deadline=None, derandomize=True)

DIAMETER = 3   # REFER cells are K(d, 3)


@st.composite
def kd3_pairs(draw):
    """A random (U, V) pair with U != V in K(d, 3), d in [2, 5]."""
    degree = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = random.Random(seed)
    u = KautzString.random(degree, DIAMETER, rng)
    v = KautzString.random(degree, DIAMETER, rng)
    while v == u:
        v = KautzString.random(degree, DIAMETER, rng)
    return u, v


@PROFILE
@given(kd3_pairs())
def test_d_paths_pairwise_vertex_disjoint(pair):
    u, v = pair
    paths = disjoint_paths(u, v)
    assert len(paths) == u.degree
    assert verify_node_disjoint(paths)
    # Each path leaves U through a distinct successor — that is what
    # makes the bundle usable for simultaneous multipath transmission.
    first_hops = [path[1] for path in paths]
    assert len(set(first_hops)) == u.degree


@PROFILE
@given(kd3_pairs())
def test_every_consecutive_pair_is_a_kautz_edge(pair):
    u, v = pair
    for path in disjoint_paths(u, v):
        assert path[0] == u and path[-1] == v
        for a, b in zip(path, path[1:]):
            assert b in a.successors()


@PROFILE
@given(kd3_pairs())
def test_realised_lengths_follow_closed_forms(pair):
    u, v = pair
    k, l = u.k, overlap(u, v)
    expected = {
        PathCase.SHORTEST: k - l,
        PathCase.VIA_V1: k,
        PathCase.OTHER: k + 1,
        PathCase.CONFLICT: k + 2,
    }
    for row, actual in predicted_length_accuracy(u, v):
        assert row.predicted_length == expected[row.case]
        if 2 * l < k:
            assert actual == row.predicted_length
        else:
            # Documented deviation (DESIGN.md): heavy-overlap pairs may
            # shift a case-(3)/(4) realisation by exactly 2.
            if actual != row.predicted_length:
                assert row.case in (PathCase.VIA_V1, PathCase.OTHER)
                assert abs(actual - row.predicted_length) == 2


@PROFILE
@given(kd3_pairs())
def test_shortest_path_realises_kautz_distance(pair):
    u, v = pair
    paths = disjoint_paths(u, v)
    assert len(paths[0]) - 1 == kautz_distance(u, v)
    shortest_rows = [
        r for r in successor_table(u, v) if r.case is PathCase.SHORTEST
    ]
    assert len(shortest_rows) == 1
    assert shortest_rows[0].predicted_length == kautz_distance(u, v)
