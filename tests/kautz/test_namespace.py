"""Tests for the L(U, V) overlap metric and Kautz distance."""

import pytest
from hypothesis import given

from repro.errors import KautzError
from repro.kautz.graph import KautzGraph
from repro.kautz.namespace import kautz_distance, overlap, shortest_path
from repro.kautz.strings import KautzString

from tests.kautz.test_strings import kautz_strings


def K(text, d=2):
    return KautzString.parse(text, d)


class TestOverlap:
    def test_paper_example_120_201(self):
        # Section III-B: distance between 120 and 201 is 3 - 2 = 1.
        assert overlap(K("120"), K("201")) == 2
        assert kautz_distance(K("120"), K("201")) == 1

    def test_self_overlap_is_k(self):
        assert overlap(K("120"), K("120")) == 3
        assert kautz_distance(K("120"), K("120")) == 0

    def test_zero_overlap(self):
        assert overlap(K("010"), K("121")) == 0
        assert kautz_distance(K("010"), K("121")) == 3

    def test_overlap_length_one(self):
        assert overlap(K("012"), K("201")) == 1

    def test_incompatible_strings_raise(self):
        with pytest.raises(KautzError):
            overlap(K("01", 2), K("012", 2))
        with pytest.raises(KautzError):
            overlap(K("012", 2), K("012", 3))

    def test_overlap_is_maximal(self):
        # 1212 vs 2121: suffixes 212, 21... longest suffix=prefix is 3.
        u = KautzString((1, 2, 1, 2), 2)
        v = KautzString((2, 1, 2, 1), 2)
        assert overlap(u, v) == 3

    @given(kautz_strings(max_degree=3, max_k=4))
    def test_overlap_self_property(self, s):
        assert overlap(s, s) == s.k


class TestDistanceAgainstBfs:
    """k - L(U, V) must equal the true hop distance in the digraph."""

    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2)])
    def test_distance_matches_bfs_exhaustively(self, d, k):
        g = KautzGraph(d, k)
        nodes = list(g.nodes())
        for u in nodes:
            for v in nodes:
                assert kautz_distance(u, v) == g.bfs_distance(u, v), (u, v)

    def test_distance_bounded_by_diameter(self):
        g = KautzGraph(3, 3)
        nodes = list(g.nodes())
        for u in nodes[:10]:
            for v in nodes:
                assert kautz_distance(u, v) <= 3


class TestShortestPath:
    def test_paper_example_shift_sequence(self):
        # Paper: 12345 -> 23450 -> 34501 in a degree-5 alphabet.
        u = KautzString((1, 2, 3, 4, 5), 5)
        v = KautzString((3, 4, 5, 0, 1), 5)
        path = shortest_path(u, v)
        assert [str(p) for p in path] == ["12345", "23450", "34501"]

    def test_path_endpoints(self):
        u, v = K("012"), K("201")
        path = shortest_path(u, v)
        assert path[0] == u
        assert path[-1] == v

    def test_path_length_is_distance(self):
        u, v = K("012"), K("201")
        assert len(shortest_path(u, v)) - 1 == kautz_distance(u, v)

    def test_path_edges_are_graph_edges(self):
        g = KautzGraph(2, 3)
        for u in g.nodes():
            for v in g.nodes():
                path = shortest_path(u, v)
                for a, b in zip(path, path[1:]):
                    assert g.has_edge(a, b)

    def test_trivial_path(self):
        u = K("012")
        assert shortest_path(u, u) == [u]

    @given(kautz_strings(max_degree=3, max_k=4))
    def test_path_to_random_destination_is_valid(self, s):
        # route from s to its reversal-ish partner: use shifted variants
        for succ in s.successors():
            path = shortest_path(s, succ)
            assert len(path) == 2
