"""Unit tests for Kautz string labels (Definition 1)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidKautzString
from repro.kautz.strings import KautzString


def kautz_strings(max_degree=4, max_k=5):
    """Hypothesis strategy producing valid KautzString values."""

    @st.composite
    def strat(draw):
        degree = draw(st.integers(min_value=1, max_value=max_degree))
        k = draw(st.integers(min_value=1, max_value=max_k))
        letters = [draw(st.integers(min_value=0, max_value=degree))]
        for _ in range(k - 1):
            choice = draw(st.integers(min_value=0, max_value=degree - 1))
            letters.append(choice if choice < letters[-1] else choice + 1)
        return KautzString(tuple(letters), degree)

    return strat()


class TestConstruction:
    def test_valid_string(self):
        s = KautzString((0, 1, 2), 2)
        assert s.k == 3
        assert s.degree == 2

    def test_rejects_repeated_adjacent(self):
        with pytest.raises(InvalidKautzString):
            KautzString((0, 0, 1), 2)

    def test_rejects_letter_out_of_alphabet(self):
        with pytest.raises(InvalidKautzString):
            KautzString((0, 3), 2)

    def test_rejects_negative_letter(self):
        with pytest.raises(InvalidKautzString):
            KautzString((0, -1), 2)

    def test_rejects_empty(self):
        with pytest.raises(InvalidKautzString):
            KautzString((), 2)

    def test_rejects_bad_degree(self):
        with pytest.raises(InvalidKautzString):
            KautzString((0, 1), 0)

    def test_parse_roundtrip(self):
        s = KautzString.parse("120", 2)
        assert s.letters == (1, 2, 0)
        assert str(s) == "120"

    def test_parse_rejects_garbage(self):
        with pytest.raises(InvalidKautzString):
            KautzString.parse("1!0", 2)

    def test_from_iterable(self):
        s = KautzString.from_iterable([2, 0, 1], 2)
        assert s == KautzString((2, 0, 1), 2)

    def test_nonadjacent_repeats_allowed(self):
        s = KautzString((0, 1, 0, 1), 1)
        assert s.k == 4


class TestAccessors:
    def test_first_last(self):
        s = KautzString((1, 2, 0), 2)
        assert s.first == 1
        assert s.last == 0

    def test_iteration_and_indexing(self):
        s = KautzString((1, 2, 0), 2)
        assert list(s) == [1, 2, 0]
        assert s[1] == 2
        assert len(s) == 3

    def test_str_uses_base36(self):
        s = KautzString((10, 0), 10)
        assert str(s) == "a0"

    def test_equality_and_hash(self):
        a = KautzString((0, 1), 2)
        b = KautzString((0, 1), 2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != KautzString((0, 1), 3)


class TestShift:
    def test_shift_drops_first_appends_last(self):
        s = KautzString((0, 1, 2), 2)
        assert s.shift(0) == KautzString((1, 2, 0), 2)

    def test_shift_rejects_repeat(self):
        s = KautzString((0, 1, 2), 2)
        with pytest.raises(InvalidKautzString):
            s.shift(2)

    def test_unshift(self):
        s = KautzString((1, 2, 0), 2)
        assert s.unshift(0) == KautzString((0, 1, 2), 2)

    def test_successor_count_is_degree(self):
        s = KautzString((0, 1, 2), 3)
        assert len(s.successors()) == 3

    def test_predecessor_count_is_degree(self):
        s = KautzString((0, 1, 2), 3)
        assert len(s.predecessors()) == 3

    def test_successor_letters_exclude_last(self):
        s = KautzString((0, 1), 2)
        assert s.successor_letters() == [0, 2]

    @given(kautz_strings())
    def test_shift_unshift_inverse(self, s):
        for succ in s.successors():
            assert succ.unshift(s.first) == s

    @given(kautz_strings())
    def test_successors_are_valid_and_distinct(self, s):
        succs = s.successors()
        assert len(set(succs)) == s.degree
        for succ in succs:
            assert succ.k == s.k


class TestRotation:
    def test_left_rotated(self):
        s = KautzString((0, 1, 2), 2)
        assert s.left_rotated() == KautzString((1, 2, 0), 2)

    def test_left_rotation_invalid_when_ends_match_start(self):
        s = KautzString((0, 1, 0), 2)
        with pytest.raises(InvalidKautzString):
            s.left_rotated()

    def test_is_rotation_of(self):
        a = KautzString((0, 1, 2), 2)
        assert a.is_rotation_of(KautzString((1, 2, 0), 2))
        assert a.is_rotation_of(a)
        assert not a.is_rotation_of(KautzString((0, 2, 1), 2))

    def test_rotation_of_different_size_is_false(self):
        a = KautzString((0, 1, 2), 2)
        assert not a.is_rotation_of(KautzString((0, 1), 2))


class TestRandom:
    def test_random_strings_are_valid(self):
        rng = random.Random(7)
        for _ in range(200):
            s = KautzString.random(3, 4, rng)
            assert s.k == 4
            assert s.degree == 3

    def test_random_is_deterministic_per_seed(self):
        a = KautzString.random(3, 4, random.Random(42))
        b = KautzString.random(3, 4, random.Random(42))
        assert a == b

    def test_random_rejects_bad_diameter(self):
        with pytest.raises(InvalidKautzString):
            KautzString.random(2, 0, random.Random(1))
