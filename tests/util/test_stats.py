"""Tests for statistics helpers."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStat,
    confidence_interval_95,
    mean,
    stdev,
    t_critical_95,
)

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=50,
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_matches_statistics_module(self):
        data = [1.0, 4.0, 9.0, 16.0]
        assert stdev(data) == pytest.approx(statistics.stdev(data))

    def test_stdev_single_sample_is_zero(self):
        assert stdev([5.0]) == 0.0

    def test_t_critical_small_df(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(10) == pytest.approx(2.228)

    def test_t_critical_large_df_is_normal(self):
        assert t_critical_95(100) == pytest.approx(1.96)

    def test_t_critical_invalid(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        assert confidence_interval_95([3.0]) == (3.0, 0.0)

    def test_identical_samples_zero_width(self):
        mu, half = confidence_interval_95([2.0, 2.0, 2.0])
        assert mu == 2.0
        assert half == 0.0

    def test_known_value(self):
        # n=4, stdev=1 -> half = 3.182 / 2
        data = [-1.0, 1.0, -1.0, 1.0]
        mu, half = confidence_interval_95(data)
        assert mu == 0.0
        s = statistics.stdev(data)
        assert half == pytest.approx(3.182 * s / 2.0)

    @given(samples)
    def test_interval_contains_mean(self, data):
        mu, half = confidence_interval_95(data)
        assert half >= 0
        assert mu == pytest.approx(sum(data) / len(data), abs=1e-6)


class TestRunningStat:
    def test_matches_batch_statistics(self):
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stat = RunningStat()
        for v in data:
            stat.add(v)
        assert stat.count == len(data)
        assert stat.mean == pytest.approx(statistics.mean(data))
        assert stat.stdev == pytest.approx(statistics.stdev(data))
        assert stat.minimum == 2.0
        assert stat.maximum == 9.0

    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        with pytest.raises(ValueError):
            _ = stat.minimum

    def test_merge(self):
        a, b, whole = RunningStat(), RunningStat(), RunningStat()
        data1, data2 = [1.0, 2.0, 3.0], [10.0, 20.0]
        for v in data1:
            a.add(v)
            whole.add(v)
        for v in data2:
            b.add(v)
            whole.add(v)
        merged = a.merge(b)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_with_empty(self):
        a = RunningStat()
        a.add(1.0)
        merged = a.merge(RunningStat())
        assert merged.count == 1
        assert merged.mean == 1.0

    @given(samples)
    def test_online_equals_offline(self, data):
        stat = RunningStat()
        for v in data:
            stat.add(v)
        assert stat.mean == pytest.approx(statistics.mean(data), rel=1e-6, abs=1e-6)
