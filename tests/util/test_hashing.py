"""Tests for consistent hashing and the hash ring."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DHTError
from repro.util.hashing import (
    HashRing,
    consistent_hash,
    elect_minimum_hash,
)


class TestConsistentHash:
    def test_stable(self):
        assert consistent_hash("abc") == consistent_hash("abc")

    def test_distinct_keys_differ(self):
        assert consistent_hash("abc") != consistent_hash("abd")

    def test_range(self):
        for bits in (8, 16, 64):
            h = consistent_hash("key", space_bits=bits)
            assert 0 <= h < 2**bits

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            consistent_hash("x", space_bits=0)
        with pytest.raises(ValueError):
            consistent_hash("x", space_bits=300)

    @given(st.text(max_size=50))
    def test_deterministic_for_any_text(self, key):
        assert consistent_hash(key) == consistent_hash(key)


class TestHashRing:
    def test_lookup_returns_member(self):
        ring = HashRing(["a", "b", "c"])
        for key in ("x", "y", "z", "w"):
            assert ring.lookup(key) in ("a", "b", "c")

    def test_empty_ring_raises(self):
        with pytest.raises(DHTError):
            HashRing().lookup("x")

    def test_add_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1

    def test_remove(self):
        ring = HashRing(["a", "b"])
        ring.remove("a")
        assert "a" not in ring
        assert ring.lookup("anything") == "b"

    def test_remove_absent_raises(self):
        with pytest.raises(DHTError):
            HashRing(["a"]).remove("b")

    def test_consistency_on_removal(self):
        """Removing a node only remaps keys that it owned."""
        ring = HashRing(["a", "b", "c"], replicas=64)
        keys = [f"key-{i}" for i in range(200)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("c")
        for k in keys:
            if before[k] != "c":
                assert ring.lookup(k) == before[k]

    def test_distribution_roughly_even(self):
        ring = HashRing(["a", "b", "c", "d"], replicas=128)
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for i in range(2000):
            counts[ring.lookup(f"key-{i}")] += 1
        for owner, count in counts.items():
            assert count > 200, f"{owner} owns too few keys: {count}"

    def test_nodes_listing(self):
        ring = HashRing(["b", "a"])
        assert ring.nodes() == ["a", "b"]


class TestElection:
    def test_deterministic(self):
        candidates = [f"actuator-{i}" for i in range(5)]
        assert elect_minimum_hash(candidates) == elect_minimum_hash(
            reversed(candidates)
        )

    def test_single_candidate(self):
        assert elect_minimum_hash(["only"]) == "only"

    def test_empty_raises(self):
        with pytest.raises(DHTError):
            elect_minimum_hash([])

    def test_winner_has_minimum_hash(self):
        candidates = [f"node-{i}" for i in range(10)]
        winner = elect_minimum_hash(candidates)
        assert consistent_hash(winner) == min(
            consistent_hash(c) for c in candidates
        )
