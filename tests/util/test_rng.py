"""Tests for deterministic per-component RNG streams."""

from repro.util.rng import RngStreams


class TestStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(42).stream("mobility")
        b = RngStreams(42).stream("mobility")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_streams_are_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_consuming_one_stream_does_not_shift_another(self):
        ref = RngStreams(3)
        expected = [ref.stream("b").random() for _ in range(3)]
        mixed = RngStreams(3)
        for _ in range(100):
            mixed.stream("a").random()   # heavy use of a different stream
        assert [mixed.stream("b").random() for _ in range(3)] == expected

    def test_master_seed_property(self):
        assert RngStreams(99).master_seed == 99

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random()
        b = RngStreams(2).stream("x").random()
        assert a != b


class TestFork:
    def test_fork_is_deterministic(self):
        a = RngStreams(5).fork("run-1").stream("x").random()
        b = RngStreams(5).fork("run-1").stream("x").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RngStreams(5)
        child = parent.fork("run-1")
        assert parent.master_seed != child.master_seed

    def test_fork_names_differ(self):
        base = RngStreams(5)
        assert (
            base.fork("run-1").master_seed != base.fork("run-2").master_seed
        )
