"""Tests for 2-D geometry primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.geometry import (
    Point,
    centroid,
    clamp,
    euclidean,
    in_square,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-4, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_toward_partial(self):
        p = Point(0, 0).toward(Point(10, 0), 4)
        assert p == Point(4, 0)

    def test_toward_overshoot_clamps_to_target(self):
        assert Point(0, 0).toward(Point(1, 0), 100) == Point(1, 0)

    def test_toward_self_is_identity(self):
        p = Point(5, 5)
        assert p.toward(p, 3) == p

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_immutability(self):
        p = Point(0, 0)
        with pytest.raises(AttributeError):
            p.x = 1

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b, origin = Point(x1, y1), Point(x2, y2), Point(0, 0)
        assert a.distance_to(b) <= (
            a.distance_to(origin) + origin.distance_to(b) + 1e-6
        )

    @given(finite, finite, st.floats(min_value=0, max_value=1e3))
    def test_toward_moves_at_most_distance(self, x, y, d):
        start = Point(0, 0)
        target = Point(x, y)
        moved = start.toward(target, d)
        assert start.distance_to(moved) <= d + 1e-6 or moved == target


class TestHelpers:
    def test_euclidean_alias(self):
        assert euclidean(Point(0, 0), Point(0, 2)) == 2.0

    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10

    def test_clamp_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(1, 2, 0)

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1, 1)

    def test_centroid_empty(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_in_square(self):
        assert in_square(Point(1, 1), 2)
        assert not in_square(Point(3, 1), 2)
        assert in_square(Point(0, 0), 2)
