"""Stateful property test: the CAN overlay under join/leave churn.

Invariants after every operation:
* the zones of all nodes tile the unit square exactly (volume 1);
* every point has exactly one owner;
* greedy routing from any node reaches the owner of any point.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.dht.can import CanOverlay

unit = st.floats(min_value=0.0, max_value=0.999, allow_nan=False)


class CanMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.can = CanOverlay()
        self.next_id = 0
        self.alive = set()

    @initialize(x=unit, y=unit)
    def first_join(self, x, y):
        self.can.join(self.next_id, (x, y))
        self.alive.add(self.next_id)
        self.next_id += 1

    @rule(x=unit, y=unit)
    def join(self, x, y):
        self.can.join(self.next_id, (x, y))
        self.alive.add(self.next_id)
        self.next_id += 1

    @precondition(lambda self: len(self.alive) > 1)
    @rule(pick=st.randoms(use_true_random=False))
    def leave(self, pick):
        node = pick.choice(sorted(self.alive))
        self.can.leave(node)
        self.alive.discard(node)

    @invariant()
    def zones_tile_the_square(self):
        if not self.alive:
            return
        total = sum(
            zone.volume
            for node in self.can.nodes()
            for zone in self.can.zones_of(node)
        )
        assert abs(total - 1.0) < 1e-9

    @invariant()
    def every_point_has_one_owner(self):
        if not self.alive:
            return
        rng = random.Random(1234)
        for _ in range(5):
            point = (rng.random(), rng.random())
            owners = [
                node
                for node in self.can.nodes()
                if any(z.contains(point) for z in self.can.zones_of(node))
            ]
            assert len(owners) == 1

    @invariant()
    def routing_reaches_owner(self):
        if not self.alive:
            return
        rng = random.Random(99)
        point = (rng.random(), rng.random())
        src = sorted(self.alive)[0]
        path = self.can.route(src, point)
        assert path[-1] == self.can.owner_of(point)


CanMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestCanChurn = CanMachine.TestCase
