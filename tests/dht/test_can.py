"""Tests for the CAN overlay."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dht.can import CanOverlay, Zone
from repro.errors import DHTError


class TestZone:
    def test_contains_half_open(self):
        z = Zone(0.0, 0.5, 0.0, 0.5)
        assert z.contains((0.0, 0.0))
        assert z.contains((0.49, 0.49))
        assert not z.contains((0.5, 0.25))

    def test_degenerate_rejected(self):
        with pytest.raises(DHTError):
            Zone(0.5, 0.5, 0.0, 1.0)

    def test_split_longer_side(self):
        wide = Zone(0.0, 1.0, 0.0, 0.5)
        left, right = wide.split()
        assert left.x1 == right.x0 == 0.5
        tall = Zone(0.0, 0.5, 0.0, 1.0)
        bottom, top = tall.split()
        assert bottom.y1 == top.y0 == 0.5

    def test_split_preserves_volume(self):
        z = Zone(0.0, 1.0, 0.0, 1.0)
        a, b = z.split()
        assert a.volume + b.volume == pytest.approx(z.volume)

    def test_adjacency(self):
        a = Zone(0.0, 0.5, 0.0, 1.0)
        b = Zone(0.5, 1.0, 0.0, 1.0)
        assert a.adjacent(b) and b.adjacent(a)

    def test_corner_touch_not_adjacent(self):
        a = Zone(0.0, 0.5, 0.0, 0.5)
        b = Zone(0.5, 1.0, 0.5, 1.0)
        assert not a.adjacent(b)

    def test_distance_to(self):
        z = Zone(0.0, 0.5, 0.0, 0.5)
        assert z.distance_to((0.25, 0.25)) == 0.0
        assert z.distance_to((0.8, 0.25)) == pytest.approx(0.3)

    def test_center(self):
        assert Zone(0.0, 1.0, 0.0, 0.5).center == (0.5, 0.25)


class TestJoinLeave:
    def test_first_join_owns_everything(self):
        can = CanOverlay()
        can.join(1, (0.3, 0.3))
        assert can.owner_of((0.9, 0.9)) == 1

    def test_join_splits_owner(self):
        can = CanOverlay()
        can.join(1, (0.2, 0.2))
        can.join(2, (0.8, 0.8))
        assert can.owner_of((0.8, 0.8)) == 2
        assert len(can) == 2

    def test_duplicate_join_rejected(self):
        can = CanOverlay()
        can.join(1, (0.1, 0.1))
        with pytest.raises(DHTError):
            can.join(1, (0.9, 0.9))

    def test_point_outside_square_rejected(self):
        can = CanOverlay()
        with pytest.raises(DHTError):
            can.join(1, (1.5, 0.5))

    def test_total_volume_invariant(self):
        can = CanOverlay()
        rng = random.Random(3)
        for i in range(20):
            can.join(i, (rng.random(), rng.random()))
        total = sum(
            z.volume for n in can.nodes() for z in can.zones_of(n)
        )
        assert total == pytest.approx(1.0)

    def test_leave_hands_over_zones(self):
        can = CanOverlay()
        can.join(1, (0.2, 0.2))
        can.join(2, (0.8, 0.8))
        can.leave(2)
        assert can.owner_of((0.8, 0.8)) == 1

    def test_leave_unknown_raises(self):
        with pytest.raises(DHTError):
            CanOverlay().leave(5)

    def test_leave_unknown_is_typed_not_bare_keyerror(self):
        # Regression: unknown ids must surface as the DHT's typed error,
        # never as the dict's bare KeyError.
        with pytest.raises(DHTError) as excinfo:
            CanOverlay().leave(41)
        assert not isinstance(excinfo.value, KeyError)
        assert "41" in str(excinfo.value)

    def test_leave_last_node_empties_overlay_cleanly(self):
        # Regression: removing the final member must not blow up on heir
        # search; the overlay goes empty and accepts a fresh first join.
        can = CanOverlay()
        can.join(1, (0.3, 0.3))
        can.leave(1)
        assert can.nodes() == []
        with pytest.raises(DHTError):
            can.owner_of((0.3, 0.3))
        can.join(2, (0.6, 0.6))
        assert can.owner_of((0.1, 0.9)) == 2

    def test_every_point_owned_after_churn(self):
        can = CanOverlay()
        rng = random.Random(11)
        for i in range(16):
            can.join(i, (rng.random(), rng.random()))
        for i in (3, 7, 11):
            can.leave(i)
        for _ in range(100):
            point = (rng.random(), rng.random())
            assert can.owner_of(point) in can.nodes()


class TestNeighborsRouting:
    def build(self, count=12, seed=5):
        can = CanOverlay()
        rng = random.Random(seed)
        for i in range(count):
            can.join(i, (rng.random(), rng.random()))
        return can, rng

    def test_neighbors_symmetric(self):
        can, _ = self.build()
        for n in can.nodes():
            for m in can.neighbors(n):
                assert n in can.neighbors(m)

    def test_route_reaches_owner(self):
        can, rng = self.build()
        for _ in range(30):
            point = (rng.random(), rng.random())
            src = rng.choice(can.nodes())
            path = can.route(src, point)
            assert path[0] == src
            assert path[-1] == can.owner_of(point)

    def test_route_hops_are_neighbors(self):
        can, rng = self.build()
        point = (rng.random(), rng.random())
        path = can.route(can.nodes()[0], point)
        for a, b in zip(path, path[1:]):
            assert b in can.neighbors(a)

    def test_route_from_owner_is_trivial(self):
        can, rng = self.build()
        point = (0.5, 0.5)
        owner = can.owner_of(point)
        assert can.route(owner, point) == [owner]

    def test_route_unknown_source(self):
        can, _ = self.build()
        with pytest.raises(DHTError):
            can.route(999, (0.5, 0.5))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_routing_always_terminates(self, seed):
        rng = random.Random(seed)
        can = CanOverlay()
        count = rng.randint(1, 25)
        for i in range(count):
            can.join(i, (rng.random(), rng.random()))
        point = (rng.random(), rng.random())
        path = can.route(rng.randrange(count), point)
        assert len(path) <= count
