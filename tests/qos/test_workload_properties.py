"""Property tests for the bursty heavy-tailed workload.

Two contracts, checked with Hypothesis (derandomized — the suite must
stay deterministic):

* **determinism** — :func:`~repro.experiments.workload.
  emission_schedule` is a pure function of the RNG state: the same
  seed yields the identical schedule, and a different seed (almost
  surely) a different one;
* **calibration** — the empirical mean of the truncated-Pareto
  duration sampler converges to the closed-form
  :func:`~repro.experiments.workload.expected_pareto_duration`, so
  the offered load of the overload sweep is what the config says it
  is.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.experiments.workload import (
    emission_schedule,
    expected_pareto_duration,
    pareto_duration,
)
from repro.qos import BurstyConfig, TrafficClass

PROFILE = settings(max_examples=60, deadline=None, derandomize=True)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
shapes = st.floats(min_value=1.2, max_value=4.0)
scales = st.floats(min_value=0.05, max_value=1.0)


def configs():
    return st.builds(
        BurstyConfig,
        load_multiplier=st.sampled_from([1.0, 5.0, 20.0]),
        on_shape=shapes,
        off_shape=shapes,
        alarm_fraction=st.floats(min_value=0.0, max_value=0.3),
        control_fraction=st.floats(min_value=0.0, max_value=0.3),
    )


class TestScheduleDeterminism:
    @PROFILE
    @given(seeds, configs())
    def test_same_seed_same_schedule(self, seed, config):
        first = emission_schedule(random.Random(seed), config, 0.0, 6.0)
        second = emission_schedule(random.Random(seed), config, 0.0, 6.0)
        assert first == second

    @PROFILE
    @given(seeds, configs())
    def test_different_seed_different_schedule(self, seed, config):
        a = emission_schedule(random.Random(seed), config, 0.0, 6.0)
        b = emission_schedule(random.Random(seed + 1), config, 0.0, 6.0)
        assert a != b

    @PROFILE
    @given(seeds, configs())
    def test_schedule_is_sane(self, seed, config):
        """Times ordered in [begin, end); deadlines match the class."""
        begin, end = 2.0, 8.0
        schedule = emission_schedule(random.Random(seed), config, begin, end)
        times = [t for t, _, _ in schedule]
        assert times == sorted(times)
        assert all(begin <= t < end for t in times)
        for _, cls, deadline in schedule:
            if cls is TrafficClass.ALARM:
                assert deadline == config.alarm_deadline
            elif cls is TrafficClass.CONTROL:
                assert deadline == config.control_deadline
            else:
                assert deadline == config.bulk_deadline

    @PROFILE
    @given(seeds)
    def test_load_multiplier_scales_the_offered_load(self, seed):
        """10x the multiplier gives (about) 10x the emissions."""
        base = BurstyConfig(load_multiplier=1.0)
        heavy = BurstyConfig(load_multiplier=10.0)
        low = len(emission_schedule(random.Random(seed), base, 0.0, 30.0))
        high = len(emission_schedule(random.Random(seed), heavy, 0.0, 30.0))
        # The on/off draw sequence differs once emission counts do, so
        # allow generous slack around the nominal 10x.
        assert high >= 4 * max(low, 1)


class TestParetoCalibration:
    @PROFILE
    @given(seeds, shapes, scales)
    def test_empirical_mean_matches_closed_form(self, seed, shape, scale):
        rng = random.Random(seed)
        cap = 5.0 * scale
        n = 4000
        mean = (
            sum(pareto_duration(rng, shape, scale, cap) for _ in range(n)) / n
        )
        expected = expected_pareto_duration(shape, scale, cap)
        # Truncation bounds the variance by (cap - scale)^2 / 4, so a
        # 6-sigma band keeps the derandomized examples stable.
        sigma = (cap - scale) / 2.0
        assert abs(mean - expected) <= 6.0 * sigma / math.sqrt(n) + 1e-9

    @PROFILE
    @given(seeds, shapes, scales)
    def test_durations_respect_scale_and_cap(self, seed, shape, scale):
        rng = random.Random(seed)
        cap = 3.0 * scale
        for _ in range(200):
            duration = pareto_duration(rng, shape, scale, cap)
            assert scale <= duration <= cap

    def test_expected_duration_degenerates_to_cap(self):
        """With cap == scale the distribution is a point mass."""
        assert expected_pareto_duration(1.5, 0.2, 0.2) == 0.2
