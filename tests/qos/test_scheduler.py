"""Unit tests for the priority MAC scheduler (queue -> radio)."""

from repro.net.packet import Packet, PacketKind
from repro.qos import (
    BackpressureState,
    MacQosScheduler,
    QosConfig,
    QosStats,
    TrafficClass,
)
from repro.sim.core import Simulator


class RecordingMac:
    """Stand-in MAC: serves every frame in a fixed airtime."""

    def __init__(self, sim, airtime=0.1):
        self._sim = sim
        self._airtime = airtime
        self.served = []

    def service_frame(self, src_id, dst_id, packet, on_result):
        self.served.append(packet)
        done = self._sim.now + self._airtime
        self._sim.schedule(self._airtime, lambda: on_result(True, done))
        return done


def _scheduler(sim, mac=None, state=None, **overrides):
    config = QosConfig(**overrides)
    stats = QosStats()
    mac = mac if mac is not None else RecordingMac(sim)
    return MacQosScheduler(sim, mac, config, state, stats), mac, stats


def _packet(cls, deadline=None, created_at=0.0):
    return Packet(
        kind=PacketKind.DATA,
        size_bytes=100,
        source=1,
        destination=2,
        created_at=created_at,
        deadline=deadline,
        traffic_class=cls.value,
    )


def _sink(results):
    return lambda ok, now: results.append((ok, now))


class TestServiceOrder:
    def test_one_frame_is_served_immediately(self):
        sim = Simulator()
        scheduler, mac, stats = _scheduler(sim)
        results = []
        scheduler.submit(1, 2, _packet(TrafficClass.BULK), _sink(results))
        sim.run_until(1.0)
        assert len(mac.served) == 1
        assert results == [(True, 0.1)]
        assert stats.frames_served == 1

    def test_backlog_is_drained_in_priority_order(self):
        sim = Simulator()
        scheduler, mac, _ = _scheduler(sim)
        order = []

        def emit():
            # First submit occupies the radio; the rest queue behind it
            # and must come out alarm -> control -> bulk.
            scheduler.submit(
                1, 2, _packet(TrafficClass.BULK), lambda ok, now: None
            )
            for cls in (
                TrafficClass.BULK,
                TrafficClass.CONTROL,
                TrafficClass.ALARM,
            ):
                packet = _packet(cls)
                scheduler.submit(
                    1, 2, packet,
                    lambda ok, now, c=cls: order.append(c),
                )

        sim.schedule(0.0, emit)
        sim.run_until(2.0)
        assert order == [
            TrafficClass.ALARM, TrafficClass.CONTROL, TrafficClass.BULK
        ]
        assert len(mac.served) == 4

    def test_nodes_are_served_independently(self):
        sim = Simulator()
        scheduler, mac, _ = _scheduler(sim)
        scheduler.submit(1, 2, _packet(TrafficClass.BULK), lambda *a: None)
        scheduler.submit(3, 4, _packet(TrafficClass.BULK), lambda *a: None)
        # Both heads serve at t=0: per-node queues, one radio each.
        assert len(mac.served) == 2


class TestDeadlineDrop:
    def test_frame_expiring_in_queue_is_dropped_without_airtime(self):
        sim = Simulator()
        scheduler, mac, stats = _scheduler(sim)
        results = []

        def emit():
            scheduler.submit(
                1, 2, _packet(TrafficClass.BULK), lambda *a: None
            )
            # Expires at t=0.05, before the radio frees at t=0.1.
            scheduler.submit(
                1, 2, _packet(TrafficClass.ALARM, deadline=0.05),
                _sink(results),
            )

        sim.schedule(0.0, emit)
        sim.run_until(2.0)
        assert len(mac.served) == 1          # only the occupying frame
        assert results and results[0][0] is False
        assert stats.deadline_drops == 1

    def test_expired_frame_is_stamped_terminal(self):
        sim = Simulator()
        scheduler, _, _ = _scheduler(sim)
        doomed = _packet(TrafficClass.ALARM, deadline=0.05)
        scheduler.submit(1, 2, _packet(TrafficClass.BULK), lambda *a: None)
        scheduler.submit(1, 2, doomed, lambda *a: None)
        sim.run_until(2.0)
        assert doomed.meta["drop_reason"] == "deadline_expired"
        assert doomed.meta["qos_terminal"] == "deadline_expired"


class TestRefusal:
    def test_expired_packet_is_refused_upfront(self):
        sim = Simulator()
        scheduler, _, stats = _scheduler(sim)
        stale = _packet(TrafficClass.ALARM, deadline=0.1, created_at=0.0)
        assert scheduler.refusal(1, 2, stale, now=0.5) == "deadline_expired"
        assert stats.deadline_drops == 1

    def test_bulk_into_congested_hop_is_shed(self):
        sim = Simulator()
        state = BackpressureState(high_water=2, low_water=0)
        scheduler, _, stats = _scheduler(sim, state=state)
        state.note_depth(2, 5)
        bulk = _packet(TrafficClass.BULK)
        alarm = _packet(TrafficClass.ALARM)
        assert scheduler.refusal(1, 2, bulk, 0.0) == "backpressure_shed"
        # Alarm and control push through congestion.
        assert scheduler.refusal(1, 2, alarm, 0.0) is None
        assert stats.backpressure_sheds == 1

    def test_full_lane_is_shed(self):
        sim = Simulator()
        scheduler, _, _ = _scheduler(sim, bulk_queue_depth=1)
        # Head occupies the radio; the next fills the depth-1 lane.
        scheduler.submit(1, 2, _packet(TrafficClass.BULK), lambda *a: None)
        scheduler.submit(1, 2, _packet(TrafficClass.BULK), lambda *a: None)
        assert (
            scheduler.refusal(1, 2, _packet(TrafficClass.BULK), 0.0)
            == "backpressure_shed"
        )
        assert scheduler.refusal(1, 2, _packet(TrafficClass.ALARM), 0.0) is None

    def test_accepted_frame_is_not_refused(self):
        sim = Simulator()
        scheduler, _, _ = _scheduler(sim)
        assert scheduler.refusal(1, 2, _packet(TrafficClass.BULK), 0.0) is None


class TestBackpressureSignal:
    def test_queue_depth_drives_the_congestion_mark(self):
        sim = Simulator()
        state = BackpressureState(high_water=2, low_water=0)
        scheduler, _, _ = _scheduler(sim, state=state, high_water=2, low_water=0)

        def emit():
            for _ in range(3):
                scheduler.submit(
                    1, 2, _packet(TrafficClass.BULK), lambda *a: None
                )

        sim.schedule(0.0, emit)
        sim.run_until(0.15)   # one served, two queued -> mark raised
        assert state.is_congested(1)
        sim.run_until(5.0)    # drained -> mark cleared
        assert not state.is_congested(1)
        assert scheduler.queue_depth(1) == 0
