"""Unit tests for the QoS vocabulary (classes, config validation)."""

import pytest

from repro.errors import ConfigError
from repro.net.packet import Packet, PacketKind
from repro.qos import (
    PRIORITY_ORDER,
    BurstyConfig,
    QosConfig,
    TrafficClass,
    class_of,
    expiry_of,
)


def _packet(kind=PacketKind.DATA, traffic_class=None, deadline=None,
            created_at=0.0):
    return Packet(
        kind=kind,
        size_bytes=100,
        source=1,
        destination=2,
        created_at=created_at,
        deadline=deadline,
        traffic_class=traffic_class,
    )


class TestClassOf:
    def test_marked_packets_are_believed(self):
        for cls in TrafficClass:
            packet = _packet(traffic_class=cls.value)
            assert class_of(packet) is cls

    def test_unmarked_data_is_bulk(self):
        assert class_of(_packet(kind=PacketKind.DATA)) is TrafficClass.BULK

    @pytest.mark.parametrize(
        "kind",
        [k for k in PacketKind if k is not PacketKind.DATA],
    )
    def test_unmarked_protocol_frames_travel_as_control(self, kind):
        """Probes/ACKs/etc. must never be classed below the bulk tier."""
        assert class_of(_packet(kind=kind)) is TrafficClass.CONTROL

    def test_priority_order_is_alarm_first_bulk_last(self):
        assert PRIORITY_ORDER[0] is TrafficClass.ALARM
        assert PRIORITY_ORDER[-1] is TrafficClass.BULK
        assert len(PRIORITY_ORDER) == len(TrafficClass)


class TestExpiryOf:
    def test_no_deadline_means_no_expiry(self):
        assert expiry_of(_packet()) is None

    def test_expiry_is_anchored_at_creation(self):
        packet = _packet(deadline=0.25, created_at=3.5)
        assert expiry_of(packet) == pytest.approx(3.75)


class TestConfigValidation:
    def test_defaults_are_valid_and_enabled(self):
        config = QosConfig()
        assert config.any_enabled

    def test_all_off_is_not_enabled(self):
        config = QosConfig(
            priority_mac=False, admission=False, backpressure=False
        )
        assert not config.any_enabled

    def test_backpressure_requires_priority_mac(self):
        with pytest.raises(ConfigError):
            QosConfig(priority_mac=False, backpressure=True)

    def test_water_marks_must_be_ordered(self):
        with pytest.raises(ConfigError):
            QosConfig(high_water=2, low_water=4)

    def test_throttle_factor_bounds(self):
        with pytest.raises(ConfigError):
            QosConfig(throttle_factor=0.0)
        with pytest.raises(ConfigError):
            QosConfig(throttle_factor=1.5)

    def test_bursty_shapes_must_have_finite_mean(self):
        with pytest.raises(ConfigError):
            BurstyConfig(on_shape=1.0)
        with pytest.raises(ConfigError):
            BurstyConfig(off_shape=0.9)

    def test_bursty_fractions_must_fit(self):
        with pytest.raises(ConfigError):
            BurstyConfig(alarm_fraction=0.7, control_fraction=0.5)

    def test_scenario_config_rejects_wrong_types(self):
        from repro.experiments.config import ScenarioConfig

        with pytest.raises(ConfigError):
            ScenarioConfig(qos=object())
        with pytest.raises(ConfigError):
            ScenarioConfig(bursty=object())
