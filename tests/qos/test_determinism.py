"""QoS determinism goldens, extending the net-suite patterns.

Three contracts:

* **opt-in transparency** — ``qos=None`` (the default) and a config
  with every mechanism disabled both reproduce the legacy flow
  byte-for-byte: no RNG consumed, no send path altered, no metric
  perturbed by even one ULP;
* **reproducibility** — same seed + QoS on (with the bursty workload,
  and composed with chaos + recovery) is byte-identical run-to-run,
  including the per-class funnels;
* **efficacy sanity** — with QoS enabled the flow genuinely differs,
  and under overload the alarm class outlives the bulk class.
"""

import pytest

from repro.chaos.spec import FaultSpec
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.qos import BurstyConfig, QosConfig
from repro.recovery import RecoveryConfig
from repro.telemetry import TelemetryConfig

from tests.net.test_determinism import METRIC_FIELDS, SMALL

OVERLOAD = SMALL.with_(
    sim_time=8.0,
    qos=QosConfig(),
    bursty=BurstyConfig(sources=6, load_multiplier=8.0),
)


def metrics_of(result):
    fields = {name: getattr(result, name) for name in METRIC_FIELDS}
    fields["class_stats"] = result.class_stats
    return fields


class TestQosOptInTransparency:
    @pytest.mark.parametrize("system", ["REFER", "DaTree"])
    def test_disabled_qos_matches_legacy_flow(self, system):
        """All mechanisms off == the pre-QoS code path exactly."""
        disabled = QosConfig(
            priority_mac=False, admission=False, backpressure=False
        )
        legacy = run_scenario(system, SMALL)
        gated = run_scenario(system, SMALL.with_(qos=disabled))
        assert repr(metrics_of(legacy)) == repr(metrics_of(gated))

    def test_default_config_has_no_class_stats(self):
        result = run_scenario("REFER", SMALL)
        assert result.class_stats == ()

    def test_disabled_qos_is_telemetry_transparent(self):
        """A disabled-QoS run exports the identical metric registry."""
        disabled = QosConfig(
            priority_mac=False, admission=False, backpressure=False
        )
        config = SMALL.with_(telemetry=TelemetryConfig())
        legacy = run_scenario("REFER", config)
        gated = run_scenario("REFER", config.with_(qos=disabled))
        assert (
            legacy.telemetry.registry.as_dict()
            == gated.telemetry.registry.as_dict()
        )


class TestQosReproducibility:
    def test_overload_run_byte_identical(self):
        a = run_scenario("REFER", OVERLOAD)
        b = run_scenario("REFER", OVERLOAD)
        assert repr(metrics_of(a)) == repr(metrics_of(b))

    def test_overload_with_chaos_and_recovery_byte_identical(self):
        config = OVERLOAD.with_(
            fault_spec=(FaultSpec(kind="rotation", start=4.0),),
            recovery=RecoveryConfig(),
            telemetry=TelemetryConfig(),
        )
        a = run_scenario("REFER", config)
        b = run_scenario("REFER", config)
        assert repr(metrics_of(a)) == repr(metrics_of(b))
        assert a.recovery == b.recovery
        assert a.telemetry.registry.as_dict() == b.telemetry.registry.as_dict()

    def test_different_seed_different_overload_run(self):
        a = run_scenario("REFER", OVERLOAD)
        b = run_scenario("REFER", OVERLOAD.with_(seed=SMALL.seed + 1))
        assert metrics_of(a) != metrics_of(b)


class TestQosEfficacy:
    def test_qos_changes_the_flow_only_when_enabled(self):
        """Sanity: with the stack on the schedule genuinely differs."""
        plain = run_scenario(
            "REFER", OVERLOAD.with_(qos=None)
        )
        shaped = run_scenario("REFER", OVERLOAD)
        assert metrics_of(plain) != metrics_of(shaped)

    def test_alarm_outlives_bulk_under_overload(self):
        result = run_scenario("REFER", OVERLOAD)
        stats = {s.traffic_class: s for s in result.class_stats}
        assert stats["alarm"].generated > 0
        assert stats["bulk"].generated > stats["alarm"].generated
        assert (
            stats["alarm"].delivery_ratio >= stats["bulk"].delivery_ratio
        )
        assert stats["alarm"].delivery_ratio >= 0.9
