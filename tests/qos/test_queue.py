"""Unit tests for the bounded per-class priority frame queue."""

from repro.net.packet import Packet, PacketKind
from repro.qos import PriorityFrameQueue, QueuedFrame, TrafficClass

DEPTHS = {
    TrafficClass.ALARM: 4,
    TrafficClass.CONTROL: 4,
    TrafficClass.BULK: 2,
}


def _frame(cls, expiry=None, uid_hint=0):
    packet = Packet(
        kind=PacketKind.DATA,
        size_bytes=100,
        source=1,
        destination=2,
        created_at=0.0,
        traffic_class=cls.value,
    )
    return QueuedFrame(
        src=1, dst=2, packet=packet,
        on_result=lambda ok, now: None,
        traffic_class=cls, expiry=expiry,
    )


class TestPriorityFrameQueue:
    def test_strict_priority_service_order(self):
        queue = PriorityFrameQueue(DEPTHS)
        bulk = _frame(TrafficClass.BULK)
        control = _frame(TrafficClass.CONTROL)
        alarm = _frame(TrafficClass.ALARM)
        for frame in (bulk, control, alarm):
            assert queue.offer(frame)
        served = [queue.pop_live(0.0)[0] for _ in range(3)]
        assert served == [alarm, control, bulk]

    def test_fifo_within_a_class(self):
        queue = PriorityFrameQueue(DEPTHS)
        first = _frame(TrafficClass.CONTROL)
        second = _frame(TrafficClass.CONTROL)
        queue.offer(first)
        queue.offer(second)
        assert queue.pop_live(0.0)[0] is first
        assert queue.pop_live(0.0)[0] is second

    def test_bounded_lane_refuses_overflow(self):
        queue = PriorityFrameQueue(DEPTHS)
        assert queue.offer(_frame(TrafficClass.BULK))
        assert queue.offer(_frame(TrafficClass.BULK))
        assert queue.lane_full(TrafficClass.BULK)
        assert not queue.offer(_frame(TrafficClass.BULK))
        # Other lanes are unaffected by a full bulk lane.
        assert not queue.lane_full(TrafficClass.ALARM)
        assert queue.offer(_frame(TrafficClass.ALARM))

    def test_expired_frames_are_drained_not_served(self):
        queue = PriorityFrameQueue(DEPTHS)
        stale = _frame(TrafficClass.ALARM, expiry=1.0)
        live = _frame(TrafficClass.CONTROL, expiry=10.0)
        queue.offer(stale)
        queue.offer(live)
        frame, expired = queue.pop_live(now=2.0)
        assert frame is live
        assert expired == [stale]
        assert queue.depth == 0

    def test_expiry_boundary_is_inclusive_of_the_deadline(self):
        """A frame is live *at* its expiry instant (now > expiry drops)."""
        queue = PriorityFrameQueue(DEPTHS)
        frame = _frame(TrafficClass.ALARM, expiry=5.0)
        queue.offer(frame)
        popped, expired = queue.pop_live(now=5.0)
        assert popped is frame
        assert not expired

    def test_all_expired_returns_none_and_drains(self):
        queue = PriorityFrameQueue(DEPTHS)
        stale = [
            _frame(TrafficClass.ALARM, expiry=0.5),
            _frame(TrafficClass.BULK, expiry=0.25),
        ]
        for frame in stale:
            queue.offer(frame)
        frame, expired = queue.pop_live(now=1.0)
        assert frame is None
        assert expired == stale
        assert queue.depth == 0

    def test_depth_counts_every_lane(self):
        queue = PriorityFrameQueue(DEPTHS)
        queue.offer(_frame(TrafficClass.ALARM))
        queue.offer(_frame(TrafficClass.BULK))
        assert queue.depth == 2
        assert queue.lane_depth(TrafficClass.ALARM) == 1
        assert queue.lane_depth(TrafficClass.CONTROL) == 0
