"""Unit tests for token buckets, admission control and backpressure."""

from repro.net.packet import Packet, PacketKind
from repro.qos import (
    AdmissionController,
    BackpressureState,
    QosConfig,
    QosStats,
    TokenBucket,
    TrafficClass,
)


def _packet(cls):
    return Packet(
        kind=PacketKind.DATA,
        size_bytes=100,
        source=1,
        destination=None,
        created_at=0.0,
        traffic_class=cls.value,
    )


class TestTokenBucket:
    def test_burst_then_starve(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        taken = [bucket.try_take(0.0) for _ in range(4)]
        assert taken == [True, True, True, False]

    def test_refills_with_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        for _ in range(2):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(0.5)   # 0.5s * 2/s = 1 token back

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(100.0)
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_scale_throttles_the_refill(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        assert bucket.try_take(0.0)
        # Unscaled, 0.25s would refill a full token; at 0.25x it
        # refills only a quarter of one.
        assert not bucket.try_take(0.25, scale=0.25)
        assert bucket.try_take(1.0, scale=0.25)


class TestBackpressureState:
    def test_hysteresis_marks_and_clears(self):
        state = BackpressureState(high_water=4, low_water=1)
        state.note_depth(7, 3)
        assert not state.is_congested(7)
        state.note_depth(7, 4)
        assert state.is_congested(7)
        assert state.any_congested()
        # Between the marks: stays congested (hysteresis).
        state.note_depth(7, 2)
        assert state.is_congested(7)
        state.note_depth(7, 1)
        assert not state.is_congested(7)
        assert not state.any_congested()

    def test_onsets_and_clears_are_counted_once(self):
        stats = QosStats()
        state = BackpressureState(high_water=2, low_water=0, stats=stats)
        state.note_depth(1, 5)
        state.note_depth(1, 6)   # still congested: no second onset
        state.note_depth(1, 0)
        assert stats.congestion_onsets == 1
        assert stats.congestion_clears == 1
        assert state.congested_count == 0


class TestAdmissionController:
    def _controller(self, state=None, **overrides):
        config = QosConfig(
            bulk_bucket_rate=2.0, bulk_bucket_burst=2.0, **overrides
        )
        stats = QosStats()
        return AdmissionController(config, state, stats), stats

    def test_alarm_is_never_policed(self):
        controller, stats = self._controller()
        for _ in range(50):
            assert controller.admit(1, _packet(TrafficClass.ALARM), 0.0) is None
        assert stats.admitted == 50
        assert stats.admission_rejected == 0

    def test_bulk_is_policed_at_the_bucket(self):
        controller, stats = self._controller()
        verdicts = [
            controller.admit(1, _packet(TrafficClass.BULK), 0.0)
            for _ in range(3)
        ]
        assert verdicts == [None, None, "admission_rejected"]
        assert stats.admission_rejected == 1

    def test_buckets_are_per_source(self):
        controller, _ = self._controller()
        for _ in range(2):
            assert controller.admit(1, _packet(TrafficClass.BULK), 0.0) is None
        # Source 1 exhausted; source 2's bucket is untouched.
        assert controller.admit(1, _packet(TrafficClass.BULK), 0.0) is not None
        assert controller.admit(2, _packet(TrafficClass.BULK), 0.0) is None

    def test_control_bucket_is_scaled_up(self):
        controller, _ = self._controller(control_bucket_scale=4.0)
        admitted = sum(
            controller.admit(1, _packet(TrafficClass.CONTROL), 0.0) is None
            for _ in range(20)
        )
        assert admitted == 8   # burst 2.0 * scale 4.0

    def test_congestion_throttles_bulk_refill(self):
        state = BackpressureState(high_water=2, low_water=0)
        controller, _ = self._controller(state=state, throttle_factor=0.25)
        for _ in range(2):
            assert controller.admit(1, _packet(TrafficClass.BULK), 0.0) is None
        state.note_depth(9, 5)   # congestion anywhere throttles sources
        # 0.5s at rate 2/s would refill a token; at 0.25x it does not.
        assert (
            controller.admit(1, _packet(TrafficClass.BULK), 0.5) is not None
        )
        state.note_depth(9, 0)
        assert controller.admit(1, _packet(TrafficClass.BULK), 2.5) is None
