"""The benchmark harness defaults to the fast engine — safely.

PR 8's engine goldens pin ``EngineConfig.fast()`` byte-identical to
``EngineConfig.reference()``, so the figure benchmarks take the speed
by default.  This suite checks the knob plumbing and re-asserts the
identity on one traced point, so a future engine change that breaks
it fails here (in tier 1) and not in a nightly bench run.
"""

import importlib.util
import pathlib
import sys

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.sim.engine import EngineConfig

BENCH_COMMON = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "_common.py"
)


@pytest.fixture()
def bench_common():
    spec = importlib.util.spec_from_file_location(
        "bench_common_under_test", BENCH_COMMON
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("bench_common_under_test", None)


class TestEngineDefault:
    def test_default_is_fast_engine(self, bench_common, monkeypatch):
        monkeypatch.delenv("REFER_BENCH_ENGINE", raising=False)
        assert bench_common.bench_engine() == EngineConfig.fast()
        assert bench_common.bench_base_config().engine == EngineConfig.fast()

    def test_reference_opt_out(self, bench_common, monkeypatch):
        monkeypatch.setenv("REFER_BENCH_ENGINE", "reference")
        assert bench_common.bench_engine() == EngineConfig.reference()

    def test_unknown_engine_rejected(self, bench_common, monkeypatch):
        monkeypatch.setenv("REFER_BENCH_ENGINE", "turbo")
        with pytest.raises(ValueError):
            bench_common.bench_engine()

    def test_workers_knob(self, bench_common, monkeypatch):
        monkeypatch.delenv("REFER_BENCH_WORKERS", raising=False)
        assert bench_common.bench_workers() == 0
        monkeypatch.setenv("REFER_BENCH_WORKERS", "4")
        assert bench_common.bench_workers() == 4


class TestFastEngineIdentity:
    def test_traced_point_matches_reference(self):
        """One real sweep point, both engines, every metric repr-equal."""
        base = ScenarioConfig(
            sim_time=6.0, warmup=1.0, rate_pps=4.0, seed=3
        )
        fast = run_scenario("REFER", base.with_(engine=EngineConfig.fast()))
        reference = run_scenario(
            "REFER", base.with_(engine=EngineConfig.reference())
        )
        for field in (
            "throughput_bps",
            "mean_delay_s",
            "comm_energy_j",
            "construction_energy_j",
            "generated",
            "delivered_qos",
            "delivered_total",
            "dropped",
            "flood_comm_energy_j",
        ):
            assert repr(getattr(fast, field)) == repr(
                getattr(reference, field)
            ), f"fast engine perturbed {field}"
        assert fast.class_stats == reference.class_stats
