"""Tests for the campaign checkpoint journal."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CampaignError, ConfigError
from repro.experiments.journal import (
    CampaignJournal,
    JournalEntry,
    spec_fingerprint,
)

FP = spec_fingerprint("grid", 1)


def _journal(path, **kwargs):
    return CampaignJournal(str(path), FP, **kwargs)


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
payloads = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(json_scalars, st.lists(json_scalars, max_size=4)),
    max_size=6,
)


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.text(
                    alphabet="abcdef0123456789:", min_size=1, max_size=12
                ),
                payloads,
                st.integers(min_value=1, max_value=5),
            ),
            max_size=8,
        )
    )
    def test_replay_equals_recorded(self, tmp_path_factory, entries):
        path = tmp_path_factory.mktemp("journal") / "j.jsonl"
        with _journal(path) as journal:
            for key, payload, attempts in entries:
                journal.record_done(key, f"spec-{key}", attempts, payload)
        replayed = _journal(path, resume=True)
        expected = {}
        for key, payload, attempts in entries:
            expected[key] = JournalEntry(
                key=key,
                spec_hash=f"spec-{key}",
                status="done",
                attempts=attempts,
                payload=payload,
            )
        assert replayed.entries == expected
        for key in expected:
            assert (
                replayed.completed(key, f"spec-{key}")
                == expected[key].payload
            )
        replayed.close()

    def test_failed_entries_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_failed("k1", "s1", 3, "crash", "exit 17")
            journal.record_done("k2", "s2", 1, {"ok": True})
        replayed = _journal(path, resume=True)
        assert replayed.completed("k1", "s1") is None
        assert [e.key for e in replayed.failures()] == ["k1"]
        assert replayed.failures()[0].reason == "crash"
        replayed.close()

    def test_later_lines_win(self, tmp_path):
        """A success recorded after a failure supersedes it on replay."""
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_failed("k", "s", 2, "hang", "deadline")
            journal.record_done("k", "s", 3, {"v": 1})
        replayed = _journal(path, resume=True)
        assert replayed.completed("k", "s") == {"v": 1}
        assert replayed.failures() == ()
        replayed.close()


class TestTornTail:
    def test_truncated_last_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_done("k1", "s1", 1, {"v": 1})
            journal.record_done("k2", "s2", 1, {"v": 2})
        text = path.read_text(encoding="utf-8")
        # Kill the coordinator mid-append: the k2 line loses its tail.
        path.write_text(text[: text.rindex('"v": 2')], encoding="utf-8")
        replayed = _journal(path, resume=True)
        assert replayed.completed("k1", "s1") == {"v": 1}
        assert replayed.completed("k2", "s2") is None
        replayed.close()

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_done("k1", "s1", 1, {"v": 1})
            journal.record_done("k2", "s2", 1, {"v": 2})
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = lines[1][:10]  # not the final line: real damage
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(CampaignError):
            _journal(path, resume=True)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_done("k1", "s1", 1, {"v": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("[1, 2]\n")
            handle.write(json.dumps({"type": "job", "key": "k2",
                                     "status": "done", "attempts": 1,
                                     "spec_hash": "s2"}) + "\n")
        with pytest.raises(CampaignError):
            _journal(path, resume=True)


class TestFingerprint:
    def test_fingerprint_is_stable_and_discriminating(self):
        assert spec_fingerprint("a", 1) == spec_fingerprint("a", 1)
        assert spec_fingerprint("a", 1) != spec_fingerprint("a", 2)

    def test_mismatched_fingerprint_raises_config_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_done("k1", "s1", 1, {"v": 1})
        with pytest.raises(ConfigError):
            CampaignJournal(
                str(path), spec_fingerprint("grid", 2), resume=True
            )

    def test_mismatched_spec_hash_raises_config_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_done("k1", "s1", 1, {"v": 1})
        replayed = _journal(path, resume=True)
        with pytest.raises(ConfigError):
            replayed.completed("k1", "other-spec")
        replayed.close()

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps(
                {"type": "campaign", "version": 99, "fingerprint": FP}
            )
            + "\n",
            encoding="utf-8",
        )
        with pytest.raises(CampaignError):
            _journal(path, resume=True)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"type": "job"}) + "\n", encoding="utf-8")
        with pytest.raises(CampaignError):
            _journal(path, resume=True)


class TestLifecycle:
    def test_fresh_start_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_done("k1", "s1", 1, {"v": 1})
        with _journal(path) as journal:
            assert journal.entries == {}
        replayed = _journal(path, resume=True)
        assert replayed.entries == {}
        replayed.close()

    def test_resume_without_file_starts_fresh(self, tmp_path):
        journal = _journal(tmp_path / "missing.jsonl", resume=True)
        assert journal.entries == {}
        journal.record_done("k", "s", 1, {})
        journal.close()
        journal.close()  # idempotent


class TestTraceHashVerification:
    """Two completions of one job must agree on their trace fingerprint."""

    def test_record_done_rejects_a_different_trace_hash(self, tmp_path):
        with _journal(tmp_path / "j.jsonl") as journal:
            journal.record_done("k", "s", 1, {"v": 1, "trace_hash": "aa" * 32})
            with pytest.raises(CampaignError, match="trace fingerprints"):
                journal.record_done(
                    "k", "s", 2, {"v": 1, "trace_hash": "bb" * 32}
                )

    def test_record_done_accepts_the_same_trace_hash(self, tmp_path):
        with _journal(tmp_path / "j.jsonl") as journal:
            journal.record_done("k", "s", 1, {"trace_hash": "aa" * 32})
            journal.record_done("k", "s", 2, {"trace_hash": "aa" * 32})
            assert journal.entries["k"].attempts == 2

    def test_record_done_tolerates_missing_trace_hashes(self, tmp_path):
        """Untraced payloads (trace_hash None/absent) never conflict."""
        with _journal(tmp_path / "j.jsonl") as journal:
            journal.record_done("k", "s", 1, {"trace_hash": None})
            journal.record_done("k", "s", 2, {"trace_hash": "aa" * 32})
            journal.record_done("k", "s", 3, {})

    def test_replay_rejects_conflicting_done_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_done("k", "s", 1, {"trace_hash": "aa" * 32})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "type": "job", "key": "k", "spec_hash": "s",
                "status": "done", "attempts": 2,
                "payload": {"trace_hash": "bb" * 32},
            }) + "\n")
        with pytest.raises(CampaignError, match="divergence"):
            _journal(path, resume=True)

    def test_replay_allows_failure_then_done(self, tmp_path):
        """A retry succeeding after a recorded failure is the normal
        later-lines-win path, not a conflict."""
        path = tmp_path / "j.jsonl"
        with _journal(path) as journal:
            journal.record_failed("k", "s", 1, "crash", "boom")
            journal.record_done("k", "s", 2, {"trace_hash": "aa" * 32})
        replayed = _journal(path, resume=True)
        assert replayed.entries["k"].status == "done"
        replayed.close()
