"""Tests for the figure sweep machinery and table rendering."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import (
    FigureData,
    SeriesPoint,
    fig4_throughput_vs_mobility,
    fig10_construction_energy_vs_size,
)
from repro.experiments.report import format_figure

TINY = ScenarioConfig(sim_time=6.0, warmup=1.0, rate_pps=4.0)


class TestSweep:
    def test_fig4_structure(self):
        data = fig4_throughput_vs_mobility(
            base=TINY,
            speeds=(1.0, 3.0),
            systems=("REFER", "DaTree"),
            seeds=2,
        )
        assert data.figure == "Fig 4"
        assert set(data.series) == {"REFER", "DaTree"}
        assert data.xs() == [1.0, 3.0]
        for points in data.series.values():
            assert all(p.samples == 2 for p in points)
            assert all(p.ci95 >= 0 for p in points)

    def test_value_at(self):
        data = fig4_throughput_vs_mobility(
            base=TINY, speeds=(1.0,), systems=("REFER",), seeds=1
        )
        assert data.value_at("REFER", 1.0) > 0
        with pytest.raises(KeyError):
            data.value_at("REFER", 9.9)

    def test_fig10_construction_grows_for_overlay(self):
        data = fig10_construction_energy_vs_size(
            base=TINY,
            sizes=(100, 200),
            systems=("Kautz-overlay",),
            seeds=1,
        )
        series = data.series["Kautz-overlay"]
        assert series[1].mean > series[0].mean


class TestReport:
    def make_data(self):
        return FigureData(
            figure="Fig X",
            title="Demo",
            xlabel="x",
            ylabel="y",
            series={
                "A": [SeriesPoint(1.0, 10.0, 0.5, 3), SeriesPoint(2.0, 20.0, 0.0, 3)],
                "B": [SeriesPoint(1.0, 1234.5, 10.0, 3), SeriesPoint(2.0, 0.001, 0.0, 3)],
            },
        )

    def test_format_contains_all_cells(self):
        text = format_figure(self.make_data())
        assert "Fig X" in text
        assert "A" in text and "B" in text
        assert "10.00" in text
        assert "1,234" in text or "1234" in text
        assert "±" in text

    def test_rows_match_xs(self):
        text = format_figure(self.make_data())
        lines = text.splitlines()
        assert len(lines) == 3 + 2   # header block + 2 data rows
