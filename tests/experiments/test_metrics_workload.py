"""Tests for metrics collection and the CBR workload."""

import random

import pytest

from repro.experiments.config import FaultConfig, ScenarioConfig
from repro.experiments.metrics import MetricsCollector
from repro.experiments.workload import CbrWorkload
from repro.errors import ConfigError
from repro.net.packet import Packet, PacketKind
from repro.sim.core import Simulator


def packet(created_at, deadline=0.6):
    return Packet(PacketKind.DATA, 1000, 1, 2, created_at, deadline=deadline)


class TestScenarioConfig:
    def test_defaults_match_paper_geometry(self):
        cfg = ScenarioConfig()
        assert cfg.area_side == 500.0
        assert cfg.sensor_range == 100.0
        assert cfg.actuator_range == 250.0
        assert cfg.sensor_count == 200
        assert cfg.qos_deadline == 0.6
        assert cfg.sources_per_window == 5
        assert cfg.source_window == 10.0

    def test_with_override(self):
        cfg = ScenarioConfig().with_(sensor_count=300, seed=9)
        assert cfg.sensor_count == 300
        assert cfg.seed == 9
        assert cfg.area_side == 500.0

    def test_end_time(self):
        cfg = ScenarioConfig(sim_time=100, warmup=10)
        assert cfg.end_time == 110

    def test_validation(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(sensor_count=5)
        with pytest.raises(ConfigError):
            ScenarioConfig(sim_time=0)
        with pytest.raises(ConfigError):
            ScenarioConfig(rate_pps=0)
        with pytest.raises(ConfigError):
            FaultConfig(count=-1)


class TestMetrics:
    def test_warmup_packets_ignored(self):
        sim = Simulator()
        metrics = MetricsCollector(sim, 0.6, warmup_end=10.0)
        metrics.on_generated(packet(5.0))
        metrics.on_delivered(packet(5.0))
        metrics.on_dropped(packet(5.0))
        assert metrics.generated == 0
        assert metrics.delivered_total == 0
        assert metrics.dropped == 0

    def test_qos_window(self):
        sim = Simulator()
        metrics = MetricsCollector(sim, 0.6, warmup_end=0.0)
        sim.schedule(0.5, lambda: metrics.on_delivered(packet(0.0)))
        sim.schedule(1.0, lambda: metrics.on_delivered(packet(0.1)))
        sim.run()
        assert metrics.delivered_total == 2
        assert metrics.delivered_qos == 1
        assert metrics.qos_bytes == 1000

    def test_throughput(self):
        sim = Simulator()
        metrics = MetricsCollector(sim, 0.6, warmup_end=0.0)
        sim.schedule(0.1, lambda: metrics.on_delivered(packet(0.0)))
        sim.run()
        assert metrics.throughput_bps(10.0) == 1000 * 8 / 10.0

    def test_throughput_invalid_window(self):
        metrics = MetricsCollector(Simulator(), 0.6, 0.0)
        with pytest.raises(ValueError):
            metrics.throughput_bps(0.0)

    def test_delay_only_counts_qos_packets(self):
        sim = Simulator()
        metrics = MetricsCollector(sim, 0.6, warmup_end=0.0)
        sim.schedule(0.2, lambda: metrics.on_delivered(packet(0.0)))
        sim.schedule(5.0, lambda: metrics.on_delivered(packet(0.1)))
        sim.run()
        assert metrics.mean_delay == pytest.approx(0.2)
        assert metrics.all_delay.count == 2

    def test_delivery_ratio(self):
        sim = Simulator()
        metrics = MetricsCollector(sim, 0.6, warmup_end=0.0)
        assert metrics.delivery_ratio == 0.0
        metrics.on_generated(packet(0.0))
        metrics.on_generated(packet(0.0))
        sim.schedule(0.1, lambda: metrics.on_delivered(packet(0.0)))
        sim.run()
        assert metrics.delivery_ratio == 0.5


class _StubSystem:
    """Minimal WsanSystem-alike that delivers instantly."""

    def __init__(self, sim, sensor_ids, network):
        self._sim = sim
        self.sensor_ids = list(sensor_ids)
        self.network = network
        self.sent = []

    def send_event(self, source_id, pkt, on_delivered=None, on_dropped=None):
        self.sent.append((source_id, pkt))
        if on_delivered is not None:
            self._sim.schedule(0.01, lambda: on_delivered(pkt))


class _StubNetwork:
    class _N:
        usable = True

    def node(self, node_id):
        return self._N()


class TestWorkload:
    def build(self, rate=10.0, window=10.0, sources=3):
        sim = Simulator()
        metrics = MetricsCollector(sim, 0.6, warmup_end=0.0)
        system = _StubSystem(sim, range(100, 160), _StubNetwork())
        workload = CbrWorkload(
            sim, system, metrics, random.Random(1),
            rate_pps=rate, packet_bytes=500, qos_deadline=0.6,
            sources_per_window=sources, source_window=window,
        )
        return sim, metrics, system, workload

    def test_packet_count_matches_rate(self):
        sim, metrics, system, workload = self.build(rate=10.0, sources=3)
        workload.start(0.0, 10.0)
        sim.run_until(11.0)
        expected = 3 * 10 * 10   # sources x rate x duration
        assert abs(len(system.sent) - expected) <= 3

    def test_sources_rotate_each_window(self):
        sim, metrics, system, workload = self.build(rate=2.0)
        workload.start(0.0, 30.0)
        sim.run_until(31.0)
        assert workload.windows == 3
        by_window = {}
        for src, pkt in system.sent:
            by_window.setdefault(int(pkt.created_at // 10), set()).add(src)
        assert len(set(map(frozenset, by_window.values()))) > 1

    def test_metrics_fed(self):
        sim, metrics, system, workload = self.build(rate=5.0)
        workload.start(0.0, 10.0)
        sim.run_until(12.0)
        assert metrics.generated == len(system.sent)
        assert metrics.delivered_qos == metrics.generated

    def test_generation_stops_at_end(self):
        sim, metrics, system, workload = self.build(rate=5.0)
        workload.start(0.0, 10.0)
        sim.run_until(50.0)
        assert all(pkt.created_at < 10.0 for _, pkt in system.sent)

    def test_packets_carry_deadline_and_kind(self):
        sim, metrics, system, workload = self.build(rate=2.0)
        workload.start(0.0, 10.0)
        sim.run_until(11.0)
        for _, pkt in system.sent:
            assert pkt.deadline == 0.6
            assert pkt.kind is PacketKind.DATA
            assert pkt.size_bytes == 500
