"""Tests for the supervised parallel campaign runner.

The fault-handling suites run the supervisor in serial degraded mode
(``workers=0``) where injection is simulated in-process — fast and
deterministic; one suite spawns real worker processes to exercise
crash detection from exit codes and hang detection from deadlines.
Every merged result is compared against an all-healthy oracle.
"""

import pytest

from repro.errors import CampaignError, ConfigError
from repro.experiments.campaign import run_campaign
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import (
    CampaignSupervisor,
    RetryPolicy,
    WorkerFaultInjector,
    figure_jobs,
    job_for,
    merge_registry_snapshots,
    parallel_campaign,
    parallel_resilience_campaign,
    payload_from_result,
    result_from_payload,
    validate_payload,
)
from repro.experiments.resilience import (
    resilience_campaign,
    resilience_config,
)
from repro.experiments.runner import run_scenario_cached
from repro.telemetry.config import TelemetryConfig

TINY = ScenarioConfig(sim_time=6.0, warmup=1.0, rate_pps=4.0)

#: No-sleep retry policy: the suites assert retry *logic*, not pacing.
FAST_RETRY = RetryPolicy(
    max_attempts=3, deadline_s=60.0, backoff_base_s=0.0, backoff_max_s=0.0
)

CAMPAIGN_KW = dict(seeds=1, figures=["fig4"], sweeps={"fig4": (5.0,)})

METRIC_FIELDS = (
    "throughput_bps",
    "mean_delay_s",
    "comm_energy_j",
    "construction_energy_j",
    "generated",
    "delivered_qos",
    "delivered_total",
    "dropped",
    "flood_comm_energy_j",
)


def _tiny_jobs():
    return figure_jobs(TINY, 1, {"fig4": (5.0,)}, systems=("REFER",))


class TestPayloadCodec:
    def test_round_trip_plain_run(self):
        run = run_scenario_cached("REFER", TINY)
        payload = validate_payload(payload_from_result(run))
        rebuilt = result_from_payload("REFER", TINY, payload)
        for field in METRIC_FIELDS:
            assert repr(getattr(rebuilt, field)) == repr(
                getattr(run, field)
            ), field
        assert rebuilt.class_stats == run.class_stats
        assert rebuilt.fault_events == run.fault_events
        assert rebuilt.resilience == run.resilience
        assert rebuilt.recovery == run.recovery

    def test_round_trip_faulted_run_with_recovery(self):
        from repro.recovery import RecoveryConfig

        config = resilience_config(TINY, "rotation", 2, 1, RecoveryConfig())
        run = run_scenario_cached("REFER", config)
        assert run.fault_events and run.resilience is not None
        assert run.recovery is not None
        payload = validate_payload(payload_from_result(run))
        rebuilt = result_from_payload("REFER", config, payload)
        assert rebuilt.fault_events == run.fault_events
        assert rebuilt.resilience == run.resilience
        assert rebuilt.recovery == run.recovery

    def test_telemetry_run_carries_registry_snapshot(self):
        config = TINY.with_(telemetry=TelemetryConfig())
        run = run_scenario_cached("REFER", config)
        payload = validate_payload(payload_from_result(run))
        assert payload["registry"] is not None
        merged = merge_registry_snapshots({"k": payload})
        assert merged == run.telemetry.registry.as_dict()
        # The rebuilt result carries no live telemetry: the snapshot
        # lives in the campaign-level merge instead.
        assert result_from_payload("REFER", config, payload).telemetry is None

    def test_untraced_run_carries_null_trace_hash(self):
        payload = payload_from_result(run_scenario_cached("REFER", TINY))
        assert payload["trace_hash"] is None

    def test_traced_run_carries_its_fingerprint(self):
        from repro.telemetry.tracing import TracingConfig

        config = TINY.with_(
            telemetry=TelemetryConfig(tracing=TracingConfig())
        )
        run = run_scenario_cached("REFER", config)
        payload = validate_payload(payload_from_result(run))
        assert payload["trace_hash"] == run.telemetry.trace.fingerprint()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("metrics"),
            lambda p: p.update(version=99),
            lambda p: p["metrics"].update(generated="12"),
            lambda p: p["metrics"].update(throughput_bps=None),
            lambda p: p.update(class_stats=[["bulk", 1, 2, 3]]),
            lambda p: p.update(fault_events=[[0.0, "m", "kind"]]),
            lambda p: p.update(registry=[["name", [[["a"], "NaN"]]]]),
            lambda p: p.update(trace_hash=123),
        ],
    )
    def test_corrupt_payloads_rejected(self, mutate):
        payload = payload_from_result(run_scenario_cached("REFER", TINY))
        mutate(payload)
        with pytest.raises(CampaignError):
            validate_payload(payload)

    def test_worker_error_payload_rejected_with_detail(self):
        with pytest.raises(CampaignError, match="EmbeddingError"):
            validate_payload(
                {"version": 1, "worker_error": "EmbeddingError: too few"}
            )


class TestRegistryMerge:
    def test_merge_sums_by_family_and_labels(self):
        p1 = {"registry": [["pkts", [[["a"], 2], [["b"], 3]]]]}
        p2 = {"registry": [["pkts", [[["a"], 5]]], ["drops", [[[], 1]]]]}
        merged = merge_registry_snapshots({"k2": p2, "k1": p1})
        assert merged == {
            "drops": {(): 1},
            "pkts": {("a",): 7, ("b",): 3},
        }

    def test_merge_is_order_independent(self):
        p1 = {"registry": [["pkts", [[["a"], 2]]]]}
        p2 = {"registry": [["pkts", [[["a"], 5]]]]}
        assert merge_registry_snapshots(
            {"k1": p1, "k2": p2}
        ) == merge_registry_snapshots({"k2": p2, "k1": p1})

    def test_no_snapshots_merges_to_none(self):
        assert merge_registry_snapshots({"k": {"registry": None}}) is None
        assert merge_registry_snapshots({}) is None


class TestJobs:
    def test_shared_sweep_points_dedupe(self):
        # Figs 9 and 10 sweep the same sizes: one job per point, not two.
        axes = {"fig9": (100, 150), "fig10": (100, 150)}
        jobs = figure_jobs(TINY, 1, axes, systems=("REFER",))
        assert len(jobs) == 2
        assert len({j.key for j in jobs}) == 2

    def test_key_is_content_addressed(self):
        a = job_for("REFER", TINY)
        assert a == job_for("REFER", TINY)
        assert a.key != job_for("DaTree", TINY).key
        assert a.key != job_for("REFER", TINY.with_(seed=2)).key

    def test_duplicate_jobs_rejected(self):
        job = job_for("REFER", TINY)
        with pytest.raises(CampaignError):
            CampaignSupervisor([job, job])

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSupervisor(_tiny_jobs(), workers=-1)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"deadline_s": 0.0},
            {"backoff_base_s": -1.0},
            {"backoff_factor": 0.5},
            {"jitter_frac": 1.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_backoff_jitter_is_deterministic_per_job(self):
        jobs = _tiny_jobs()
        a = CampaignSupervisor(jobs, seed=0)._backoff_delay(jobs[0].key, 1)
        b = CampaignSupervisor(jobs, seed=0)._backoff_delay(jobs[0].key, 1)
        assert a == b
        other = CampaignSupervisor(jobs, seed=1)._backoff_delay(
            jobs[0].key, 1
        )
        assert a != other


class TestSerialDegradedMode:
    def test_workers0_campaign_equals_legacy_serial(self):
        serial = run_campaign(TINY, **CAMPAIGN_KW)
        supervised = parallel_campaign(TINY, workers=0, **CAMPAIGN_KW)
        assert supervised.figures["fig4"] == serial.figures["fig4"]
        assert supervised.failed_jobs == ()

    def test_workers0_resilience_equals_legacy_serial(self):
        kw = dict(
            systems=("REFER",),
            fault_classes=("rotation",),
            intensities=(2,),
            seeds=1,
        )
        serial = resilience_campaign(TINY, **kw)
        supervised = parallel_resilience_campaign(TINY, workers=0, **kw)
        assert supervised.cells == serial.cells
        assert supervised.failed_jobs == ()

    def test_crash_once_then_succeed_matches_oracle(self):
        oracle = CampaignSupervisor(_tiny_jobs(), retry=FAST_RETRY).run()
        jobs = _tiny_jobs()
        injected = CampaignSupervisor(
            jobs,
            retry=FAST_RETRY,
            fault_injector=WorkerFaultInjector.of(crash={jobs[0].key: 1}),
        ).run()
        assert injected.payloads == oracle.payloads
        assert injected.failed == ()
        assert injected.stats.crashes == 1
        assert injected.stats.retries == 1

    def test_permanent_crash_quarantines_with_manifest(self):
        from repro.experiments.parallel import ALWAYS

        jobs = _tiny_jobs()
        outcome = CampaignSupervisor(
            jobs,
            retry=FAST_RETRY,
            fault_injector=WorkerFaultInjector.of(
                crash={jobs[0].key: ALWAYS}
            ),
        ).run()
        assert outcome.payloads == {}
        assert len(outcome.failed) == 1
        failed = outcome.failed[0]
        assert failed.key == jobs[0].key
        assert failed.reason == "crash"
        assert failed.attempts == FAST_RETRY.max_attempts
        assert outcome.stats.quarantined == 1

    def test_corrupt_payload_rejected_then_retried(self):
        oracle = CampaignSupervisor(_tiny_jobs(), retry=FAST_RETRY).run()
        jobs = _tiny_jobs()
        injected = CampaignSupervisor(
            jobs,
            retry=FAST_RETRY,
            fault_injector=WorkerFaultInjector.of(
                corrupt={jobs[0].key: 2}
            ),
        ).run()
        assert injected.payloads == oracle.payloads
        assert injected.stats.corrupt == 2
        assert injected.failed == ()

    def test_campaign_completes_around_poisoned_job(self):
        """A permanently failing job costs its own samples, nothing else."""
        from repro.experiments.parallel import ALWAYS

        kw = dict(
            seeds=1,
            figures=["fig4"],
            sweeps={"fig4": (5.0, 10.0)},
        )
        serial = run_campaign(TINY, **kw)
        poisoned_key = figure_jobs(
            TINY, 1, {"fig4": (5.0, 10.0)}, systems=("REFER",)
        )[0].key
        result = parallel_campaign(
            TINY,
            workers=0,
            retry=FAST_RETRY,
            fault_injector=WorkerFaultInjector.of(
                crash={poisoned_key: ALWAYS}
            ),
            **kw,
        )
        assert [f.key for f in result.failed_jobs] == [poisoned_key]
        healthy = serial.figures["fig4"].series
        merged = result.figures["fig4"].series
        assert set(merged) == set(healthy)
        for system, points in healthy.items():
            for got, want in zip(merged[system], points):
                if got.samples == want.samples:
                    assert got == want
                else:
                    # The poisoned point: zero samples, NaN mean.
                    assert got.samples == 0
                    assert got.mean != got.mean

    def test_failed_jobs_render_in_report(self):
        from repro.experiments.campaign import campaign_report
        from repro.experiments.parallel import ALWAYS

        key = figure_jobs(TINY, 1, {"fig4": (5.0,)}, systems=("REFER",))[
            0
        ].key
        result = parallel_campaign(
            TINY,
            workers=0,
            retry=FAST_RETRY,
            fault_injector=WorkerFaultInjector.of(crash={key: ALWAYS}),
            **CAMPAIGN_KW,
        )
        report = campaign_report(result)
        assert "## Failed jobs" in report
        assert key in report


class TestJournalResume:
    def test_resume_after_truncation_is_byte_identical(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        kw = dict(
            seeds=1, figures=["fig4"], sweeps={"fig4": (5.0, 10.0)}
        )
        full = parallel_campaign(TINY, journal=str(journal), **kw)
        assert full.failed_jobs == ()
        # Kill the coordinator after some completions: drop the last
        # two job lines plus half of another (a torn tail write).
        lines = journal.read_text(encoding="utf-8").splitlines()
        assert len(lines) > 4
        truncated = lines[:-2] + [lines[-2][: len(lines[-2]) // 2]]
        journal.write_text(
            "\n".join(truncated) + "\n", encoding="utf-8"
        )
        resumed = parallel_campaign(
            TINY, journal=str(journal), resume=True, **kw
        )
        assert resumed.figures["fig4"] == full.figures["fig4"]
        assert resumed.failed_jobs == ()

    def test_resume_reuses_journalled_payloads(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        jobs = _tiny_jobs()
        from repro.experiments.journal import CampaignJournal

        first = CampaignJournal(str(journal), "fp")
        CampaignSupervisor(jobs, journal=first).run()
        first.close()
        second = CampaignJournal(str(journal), "fp", resume=True)
        outcome = CampaignSupervisor(_tiny_jobs(), journal=second).run()
        second.close()
        assert outcome.stats.reused == len(jobs)
        assert outcome.stats.executed == 0

    def test_changed_grid_rejected_on_resume(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        parallel_campaign(TINY, journal=str(journal), **CAMPAIGN_KW)
        with pytest.raises(ConfigError):
            parallel_campaign(
                TINY.with_(seed=2),
                journal=str(journal),
                resume=True,
                **CAMPAIGN_KW,
            )


class TestRealWorkerPool:
    """Spawned-process suite: real crashes, real hangs, real deadlines."""

    def test_crash_and_hang_detection_with_retries(self):
        jobs = figure_jobs(
            TINY, 1, {"fig4": (5.0, 10.0)}, systems=("REFER",)
        )
        assert len(jobs) == 2
        oracle = CampaignSupervisor(jobs, retry=FAST_RETRY).run()
        injector = WorkerFaultInjector.of(
            crash={jobs[0].key: 1}, hang={jobs[1].key: 1}
        )
        outcome = CampaignSupervisor(
            figure_jobs(
                TINY, 1, {"fig4": (5.0, 10.0)}, systems=("REFER",)
            ),
            workers=2,
            # A healthy spawned attempt is ~1.5 s (interpreter + import
            # + a 0.3 s scenario); 8 s leaves a wide margin while
            # bounding how long the injected hang is allowed to sit
            # before the deadline kills it.
            retry=RetryPolicy(
                max_attempts=2,
                deadline_s=8.0,
                backoff_base_s=0.0,
                backoff_max_s=0.0,
            ),
            fault_injector=injector,
        ).run()
        assert outcome.failed == ()
        assert outcome.payloads == oracle.payloads
        assert outcome.stats.crashes == 1
        assert outcome.stats.hangs == 1
        assert outcome.stats.retries == 2
