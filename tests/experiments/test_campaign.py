"""Tests for campaign runs and report rendering."""

import pytest

from repro.errors import ConfigError
from repro.experiments.campaign import (
    FIGURE_FUNCTIONS,
    campaign_report,
    run_campaign,
)
from repro.experiments.config import ScenarioConfig

TINY = ScenarioConfig(sim_time=6.0, warmup=1.0, rate_pps=4.0)


class TestRunCampaign:
    def test_subset_selection(self):
        result = run_campaign(TINY, seeds=1, figures=["fig10"])
        assert result.names() == ["fig10"]
        assert result["fig10"].figure == "Fig 10"

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigError):
            run_campaign(TINY, seeds=1, figures=["fig99"])

    def test_invalid_seeds(self):
        with pytest.raises(ConfigError):
            run_campaign(TINY, seeds=0)

    def test_all_names_registered(self):
        assert set(FIGURE_FUNCTIONS) == {
            f"fig{i}" for i in range(4, 12)
        }

    def test_shared_sweeps_are_memoised(self):
        """Figs 9 & 10 share their size sweep: the second is ~free."""
        import time

        run_campaign(
            TINY.with_(seed=7), seeds=1, figures=["fig9"]
        )
        start = time.perf_counter()
        run_campaign(
            TINY.with_(seed=7), seeds=1, figures=["fig9", "fig10", "fig11"]
        )
        # All three resolve from the memo populated by the first call.
        assert time.perf_counter() - start < 2.0


class TestReport:
    def test_report_structure(self):
        result = run_campaign(TINY, seeds=1, figures=["fig10"])
        text = campaign_report(result)
        assert text.startswith("# REFER evaluation campaign")
        assert "## Fig 10" in text
        assert "REFER" in text and "Kautz-overlay" in text
        assert "seeds=1" in text
