"""Tests for trace-driven workloads."""

import random

import pytest

from repro.errors import ConfigError
from repro.experiments.metrics import MetricsCollector
from repro.experiments.traces import (
    EventTrace,
    TraceEvent,
    TraceWorkload,
    burst_trace,
    moving_target_trace,
    poisson_trace,
)
from repro.util.geometry import Point


class TestTraceFormat:
    def test_events_sorted_by_time(self):
        trace = EventTrace(
            [TraceEvent(5.0, 0, 0), TraceEvent(1.0, 1, 1)]
        )
        assert [e.time for e in trace] == [1.0, 5.0]

    def test_duration(self):
        trace = EventTrace([TraceEvent(2.0, 0, 0), TraceEvent(7.0, 1, 1)])
        assert trace.duration == 7.0
        assert EventTrace([]).duration == 0.0

    def test_save_load_roundtrip(self, tmp_path):
        trace = EventTrace(
            [
                TraceEvent(1.5, 100.0, 200.0, 1.25),
                TraceEvent(3.0, 50.5, 60.25),
            ]
        )
        path = tmp_path / "events.trace"
        trace.save(path)
        loaded = EventTrace.load(path)
        assert len(loaded) == 2
        assert loaded.events[0].time == pytest.approx(1.5)
        assert loaded.events[0].magnitude == pytest.approx(1.25)
        assert loaded.events[1].magnitude == 1.0

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\n1.0 2.0 3.0  # trailing\n")
        assert len(EventTrace.load(path)) == 1

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1.0 2.0\n")
        with pytest.raises(ConfigError):
            EventTrace.load(path)

    def test_position_property(self):
        assert TraceEvent(0.0, 3.0, 4.0).position == Point(3.0, 4.0)


class TestGenerators:
    def test_poisson_rate(self):
        trace = poisson_trace(2.0, 500.0, 100.0, random.Random(1))
        # ~1000 events expected; allow generous slack.
        assert 800 < len(trace) < 1200
        assert all(0 <= e.x <= 100 and 0 <= e.y <= 100 for e in trace)

    def test_poisson_invalid(self):
        with pytest.raises(ConfigError):
            poisson_trace(0.0, 10.0, 100.0, random.Random(1))

    def test_moving_target_step_bound(self):
        trace = moving_target_trace(
            60.0, 500.0, speed=10.0, report_period=1.0,
            rng=random.Random(2),
        )
        for a, b in zip(trace.events, trace.events[1:]):
            assert a.position.distance_to(b.position) <= 10.0 + 1e-6

    def test_moving_target_invalid_period(self):
        with pytest.raises(ConfigError):
            moving_target_trace(10, 100, 1.0, 0.0, random.Random(1))

    def test_burst_trace_clusters(self):
        centers = [Point(100, 100), Point(400, 400)]
        trace = burst_trace(
            centers, start=5.0, burst_duration=10.0,
            events_per_burst=20, spread=15.0, rng=random.Random(3),
        )
        assert len(trace) == 40
        near_first = sum(
            1 for e in trace if e.position.distance_to(centers[0]) < 60
        )
        assert near_first >= 18

    def test_generators_deterministic(self):
        a = poisson_trace(1.0, 50.0, 100.0, random.Random(7))
        b = poisson_trace(1.0, 50.0, 100.0, random.Random(7))
        assert [e.time for e in a] == [e.time for e in b]


class TestTraceWorkload:
    def build(self, trace, sensing_range=80.0):
        from repro.core.system import ReferSystem
        from repro.net.energy import Phase
        from repro.net.network import WirelessNetwork
        from repro.sim.core import Simulator
        from repro.wsan.deployment import plan_deployment
        from repro.wsan.system import build_nodes

        rng = random.Random(11)
        sim = Simulator()
        network = WirelessNetwork(sim, rng)
        plan = plan_deployment(200, 500.0, rng)
        build_nodes(network, plan, rng, sensor_max_speed=1.0)
        system = ReferSystem(network, plan, rng)
        system.build()
        network.set_phase(Phase.COMMUNICATION)
        system.start()
        metrics = MetricsCollector(sim, 0.6, warmup_end=0.0)
        workload = TraceWorkload(
            sim, system, metrics, trace, sensing_range=sensing_range
        )
        return sim, system, metrics, workload

    def test_replay_delivers_reports(self):
        trace = poisson_trace(1.0, 20.0, 500.0, random.Random(5))
        sim, system, metrics, workload = self.build(trace)
        workload.start()
        sim.run_until(25.0)
        system.stop()
        assert workload.detected_events > 0
        assert metrics.generated > 0
        assert metrics.delivered_qos >= 0.9 * metrics.generated
        assert workload.coverage() > 0.9

    def test_detector_cap(self):
        trace = EventTrace([TraceEvent(1.0, 250.0, 250.0)])
        sim, system, metrics, workload = self.build(trace)
        workload.start()
        sim.run_until(3.0)
        assert metrics.generated <= 3

    def test_undetected_event_counted(self):
        # Sensing range so small no sensor can detect.
        trace = EventTrace([TraceEvent(1.0, 250.0, 250.0)])
        sim, system, metrics, workload = self.build(
            trace, sensing_range=0.001
        )
        workload.start()
        sim.run_until(3.0)
        assert workload.undetected_events == 1
        assert workload.coverage() == 0.0

    def test_invalid_parameters(self):
        trace = EventTrace([])
        with pytest.raises(ConfigError):
            TraceWorkload(None, None, None, trace, sensing_range=0.0)
