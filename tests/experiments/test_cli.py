"""Tests for the command-line interface."""

import pytest

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_figure_command(self):
        args = build_parser().parse_args(["fig4", "--seeds", "3"])
        assert args.command == "fig4"
        assert args.seeds == 3

    def test_run_command(self):
        args = build_parser().parse_args(
            ["run", "REFER", "--sensors", "100"]
        )
        assert args.command == "run"
        assert args.system == "REFER"
        assert args.sensors == 100

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NotASystem"])


class TestMain:
    def test_run_prints_metrics(self, capsys):
        code = main(
            ["run", "REFER", "--sim-time", "8", "--rate", "4", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "REFER" in out

    def test_run_without_system_errors(self, capsys):
        assert main(["run"]) == 2

    def test_figure_prints_table(self, capsys):
        code = main(
            [
                "fig10", "--sim-time", "6", "--rate", "4", "--seeds", "1",
                "--points", "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 10" in out
        assert "REFER" in out and "Kautz-overlay" in out

    def test_figure_point_override_speeds(self, capsys):
        code = main(
            [
                "fig4", "--sim-time", "6", "--rate", "4", "--seeds", "1",
                "--points", "1.0",
            ]
        )
        assert code == 0
        assert "Fig 4" in capsys.readouterr().out

    def test_run_with_faults(self, capsys):
        code = main(
            [
                "run", "DaTree", "--sim-time", "8", "--rate", "4",
                "--faults", "4",
            ]
        )
        assert code == 0
