"""Integration tests for the scenario runner (all four systems)."""

import pytest

from repro.errors import ConfigError
from repro.experiments.config import FaultConfig, ScenarioConfig
from repro.experiments.runner import SYSTEMS, run_scenario

FAST = ScenarioConfig(sim_time=10.0, warmup=2.0, rate_pps=5.0)


class TestRunner:
    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario("nope", FAST)

    @pytest.mark.parametrize("name", sorted(SYSTEMS))
    def test_each_system_runs_and_delivers(self, name):
        result = run_scenario(name, FAST)
        assert result.system == SYSTEMS[name].name
        assert result.generated > 0
        assert result.delivered_qos > 0.5 * result.generated
        assert result.comm_energy_j > 0
        assert result.construction_energy_j > 0
        assert result.mean_delay_s > 0

    def test_deterministic_per_seed(self):
        a = run_scenario("REFER", FAST)
        b = run_scenario("REFER", FAST)
        assert a.throughput_bps == b.throughput_bps
        assert a.comm_energy_j == b.comm_energy_j
        assert a.mean_delay_s == b.mean_delay_s

    def test_seed_changes_results(self):
        a = run_scenario("REFER", FAST)
        b = run_scenario("REFER", FAST.with_(seed=2))
        assert (
            a.comm_energy_j != b.comm_energy_j
            or a.mean_delay_s != b.mean_delay_s
        )

    def test_fault_injection_runs(self):
        result = run_scenario(
            "REFER", FAST.with_(faults=FaultConfig(count=4))
        )
        assert result.generated > 0

    def test_total_energy_property(self):
        result = run_scenario("DaTree", FAST)
        assert result.total_energy_j == (
            result.comm_energy_j + result.construction_energy_j
        )

    def test_delivery_ratio_property(self):
        result = run_scenario("REFER", FAST)
        assert 0 < result.delivery_ratio <= 1


class TestHeadlineOrderings:
    """The paper's headline comparisons, as cheap smoke assertions."""

    def test_refer_cheapest_communication(self):
        results = {
            name: run_scenario(name, FAST.with_(sensor_max_speed=3.0))
            for name in SYSTEMS
        }
        refer = results["REFER"].comm_energy_j
        for name, result in results.items():
            if name != "REFER":
                assert result.comm_energy_j > refer

    def test_construction_ordering(self):
        results = {name: run_scenario(name, FAST) for name in SYSTEMS}
        assert (
            results["DaTree"].construction_energy_j
            < results["D-DEAR"].construction_energy_j
            < results["REFER"].construction_energy_j
            < results["Kautz-overlay"].construction_energy_j
        )

    def test_overlay_has_highest_delay(self):
        results = {name: run_scenario(name, FAST) for name in SYSTEMS}
        overlay = results["Kautz-overlay"].mean_delay_s
        for name, result in results.items():
            if name != "Kautz-overlay":
                assert result.mean_delay_s < overlay
