"""Fast end-to-end resilience smoke (also the CI campaign gate).

One small K(2,3) world, one permanent-crash burst a third into the
run: REFER must take the hit (the windowed delivery ratio dips), then
recover within the probe's band — without issuing a single
route-discovery flood.  The tree baseline recovers by flooding, which
is exactly the contrast the resilience campaign measures at scale.
"""

from repro.chaos import FaultSpec
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario_cached

SMOKE = ScenarioConfig(
    seed=2,
    sensor_count=40,
    area_side=220.0,
    sim_time=20.0,
    warmup=3.0,
    rate_pps=8.0,
    fault_spec=FaultSpec(
        kind="permanent", count=10, period=30.0, rounds=1, start=8.0
    ),
)


class TestResilienceSmoke:
    def test_refer_recovers_without_flooding(self):
        result = run_scenario_cached("REFER", SMOKE)
        summary = result.resilience
        assert summary is not None
        assert summary.fault_count >= 1
        # The burst is heavy enough to observably dent delivery...
        assert summary.worst_trough < 1.0
        # ...and REFER climbs back into the baseline band, fast.
        assert summary.recovered_fraction == 1.0
        assert summary.mean_recovery_s <= 10.0
        # Local repair only: zero communication-phase flood energy.
        assert result.flood_comm_energy_j == 0.0
        assert result.delivery_ratio > 0.8

    def test_flooding_baseline_pays_for_repair(self):
        result = run_scenario_cached("DaTree", SMOKE)
        assert result.flood_comm_energy_j > 0.0

    def test_event_log_matches_spec(self):
        result = run_scenario_cached("REFER", SMOKE)
        injects = [e for e in result.fault_events if e.kind == "inject"]
        assert len(injects) == 1
        assert injects[0].time == 8.0
        assert len(injects[0].nodes) == 10
        assert injects[0].model == "permanent-crash"
