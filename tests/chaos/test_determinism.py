"""Chaos determinism: one seed, one schedule, one set of metrics.

The subsystem's contract is that all randomness flows through the
run's ``RngStreams`` and all timing through the sim clock — so the
same seed must reproduce the exact fault schedule and the exact run
metrics, for every fault class, and composed faults must not perturb
each other's streams.
"""

import pytest

from repro.chaos import FAULT_KINDS, FaultSpec
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario

SMALL = ScenarioConfig(
    seed=3,
    sensor_count=40,
    area_side=220.0,
    sim_time=16.0,
    warmup=2.0,
    rate_pps=5.0,
)


def spec_of(kind):
    if kind == "blackout":
        return FaultSpec(kind=kind, radius=60.0, period=12.0, duration=6.0,
                         rounds=1, start=4.0)
    if kind == "actuator":
        return FaultSpec(kind=kind, count=1, period=12.0, duration=4.0,
                         rounds=1, start=4.0)
    return FaultSpec(kind=kind, count=2, period=6.0, start=4.0)


class TestSeedDeterminism:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_same_seed_same_schedule_and_metrics(self, kind):
        config = SMALL.with_(fault_spec=spec_of(kind))
        a = run_scenario("REFER", config)
        b = run_scenario("REFER", config)
        assert a.fault_events == b.fault_events
        assert a.throughput_bps == b.throughput_bps
        assert a.mean_delay_s == b.mean_delay_s
        assert a.comm_energy_j == b.comm_energy_j
        assert a.delivered_total == b.delivered_total
        assert a.resilience == b.resilience

    def test_different_seed_different_schedule(self):
        spec = spec_of("rotation")
        a = run_scenario("REFER", SMALL.with_(fault_spec=spec))
        b = run_scenario("REFER", SMALL.with_(seed=4, fault_spec=spec))
        broken_a = [e.nodes for e in a.fault_events if e.kind == "inject"]
        broken_b = [e.nodes for e in b.fault_events if e.kind == "inject"]
        assert broken_a != broken_b

    def test_composed_faults_deterministic(self):
        config = SMALL.with_(
            fault_spec=(spec_of("rotation"), spec_of("links")),
        )
        a = run_scenario("REFER", config)
        b = run_scenario("REFER", config)
        assert a.fault_events == b.fault_events
        assert a.comm_energy_j == b.comm_energy_j

    def test_each_model_gets_its_own_stream(self):
        # Adding a second model must not change which nodes the first
        # one breaks: each model draws from its own named stream.
        solo = run_scenario("REFER", SMALL.with_(fault_spec=spec_of("rotation")))
        composed = run_scenario(
            "REFER",
            SMALL.with_(fault_spec=(spec_of("rotation"), spec_of("links"))),
        )
        rotation_solo = [
            e for e in solo.fault_events if e.model == "crash-rotation"
        ]
        rotation_composed = [
            e for e in composed.fault_events if e.model == "crash-rotation"
        ]
        assert [e.nodes for e in rotation_solo] == [
            e.nodes for e in rotation_composed
        ]
