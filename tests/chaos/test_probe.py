"""Tests for the resilience probe's windowing and recovery analysis."""

import pytest

from repro.chaos import FaultEvent, ResilienceProbe
from repro.errors import ConfigError
from repro.net.packet import Packet, PacketKind
from repro.sim.core import Simulator


def pkt(created_at):
    return Packet(PacketKind.DATA, 100, 0, 1, created_at)


def feed(probe, created_at, generated, delivered):
    """``generated`` packets in one window, ``delivered`` of them made it."""
    for i in range(generated):
        p = pkt(created_at)
        probe.on_generated(p)
        if i < delivered:
            probe.on_delivered(p)
        else:
            probe.on_dropped(p)


def inject(time, model="crash-rotation"):
    return FaultEvent(time=time, model=model, kind="inject", nodes=(1,))


class TestWindowing:
    def test_bucketing_by_creation_time(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        feed(probe, 0.5, generated=4, delivered=4)
        feed(probe, 1.5, generated=4, delivered=2)
        samples = probe.samples()
        assert [s.start for s in samples] == [0.0, 1.0]
        assert samples[0].ratio == 1.0
        assert samples[1].ratio == 0.5

    def test_ratio_between(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        feed(probe, 0.5, 4, 4)
        feed(probe, 1.5, 4, 0)
        assert probe.ratio_between(0.0, 2.0) == 0.5
        assert probe.ratio_between(0.0, 1.0) == 1.0
        assert probe.ratio_between(5.0, 9.0) == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigError):
            ResilienceProbe(Simulator(), window=0.0)


class TestRecoveryReport:
    def test_dip_and_recovery(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        for t in (0.5, 1.5, 2.5):
            feed(probe, t, 10, 10)     # healthy baseline
        feed(probe, 3.5, 10, 2)        # fault hits at t=3
        feed(probe, 4.5, 10, 6)        # partial
        feed(probe, 5.5, 10, 10)       # recovered
        summary = probe.recovery_report([inject(3.0)])
        assert summary.fault_count == 1
        record = summary.records[0]
        assert record.baseline == 1.0
        assert record.trough == pytest.approx(0.2)
        assert record.recovery_windows == 2
        assert record.recovery_time_s == pytest.approx(2.0)
        assert record.recovered
        assert record.degradation == pytest.approx(0.8)

    def test_no_dip_recovers_immediately(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        for t in (0.5, 1.5, 2.5, 3.5):
            feed(probe, t, 10, 10)
        summary = probe.recovery_report([inject(3.0)])
        record = summary.records[0]
        assert record.recovery_windows == 0
        assert record.trough == 1.0

    def test_never_recovers(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        feed(probe, 0.5, 10, 10)
        feed(probe, 1.5, 10, 0)
        feed(probe, 2.5, 10, 0)
        summary = probe.recovery_report([inject(1.0)])
        record = summary.records[0]
        assert not record.recovered
        assert record.recovery_time_s is None
        assert record.trough == 0.0
        assert summary.recovered_fraction == 0.0
        assert summary.mean_recovery_s == 0.0

    def test_no_traffic_after_fault(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        feed(probe, 0.5, 10, 9)
        summary = probe.recovery_report([inject(5.0)])
        record = summary.records[0]
        assert record.recovery_windows == 0
        assert record.trough == record.baseline

    def test_baseline_from_preceding_windows_only(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        feed(probe, 0.5, 10, 0)        # ancient outage, outside baseline
        for t in (2.5, 3.5, 4.5):
            feed(probe, t, 10, 8)
        feed(probe, 5.5, 10, 8)
        summary = probe.recovery_report([inject(5.0)], baseline_windows=3)
        assert summary.records[0].baseline == pytest.approx(0.8)
        assert summary.records[0].recovery_windows == 0

    def test_recover_events_ignored(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        feed(probe, 0.5, 10, 10)
        recover = FaultEvent(time=0.2, model="m", kind="recover", nodes=(1,))
        summary = probe.recovery_report([recover])
        assert summary.fault_count == 0
        assert summary.recovered_fraction == 1.0
        assert summary.worst_trough == 1.0

    def test_multiple_faults_aggregate(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        for t in (0.5, 1.5):
            feed(probe, t, 10, 10)
        feed(probe, 2.5, 10, 5)        # fault 1 at t=2, recovers next window
        feed(probe, 3.5, 10, 10)
        feed(probe, 4.5, 10, 2)        # fault 2 at t=4
        feed(probe, 5.5, 10, 10)
        summary = probe.recovery_report([inject(2.0), inject(4.0)])
        assert summary.fault_count == 2
        assert summary.recovered_fraction == 1.0
        assert summary.worst_trough == pytest.approx(0.2)
        assert summary.mean_trough == pytest.approx((0.5 + 0.2) / 2.0)
        assert summary.mean_recovery_s == pytest.approx(1.0)

    def test_invalid_baseline_windows(self):
        probe = ResilienceProbe(Simulator(), window=1.0)
        with pytest.raises(ConfigError):
            probe.recovery_report([], baseline_windows=0)
