"""Tests for the chaos fault-model library."""

import random

import pytest

from repro.chaos import (
    ActuatorOutageFault,
    BatteryDepletionFault,
    ChaosCoordinator,
    CrashRotationFault,
    GilbertElliottLinkFault,
    PermanentCrashFault,
    RegionalBlackoutFault,
)
from repro.errors import ConfigError
from repro.net.mac import MacConfig
from repro.net.mobility import StaticMobility
from repro.net.network import WirelessNetwork
from repro.net.node import Node, NodeRole
from repro.sim.core import Simulator
from repro.util.geometry import Point


def build_grid(side=4, spacing=70.0, seed=1, actuators=0):
    """A side x side grid; the first ``actuators`` nodes are actuators."""
    sim = Simulator()
    net = WirelessNetwork(
        sim,
        random.Random(seed),
        mac_config=MacConfig(base_loss=0.0, contention_loss=0.0),
    )
    for i in range(side):
        for j in range(side):
            node_id = i * side + j
            role = NodeRole.ACTUATOR if node_id < actuators else NodeRole.SENSOR
            net.add_node(
                Node(
                    node_id,
                    role,
                    StaticMobility(Point(i * spacing, j * spacing)),
                    100.0,
                )
            )
    return sim, net


def all_ids(net):
    return net.medium.node_ids()


class TestCrashRotation:
    def test_rotates_and_records_events(self):
        sim, net = build_grid()
        fault = CrashRotationFault(
            net, random.Random(5),
            count=lambda: 3, eligible=lambda: all_ids(net), period=10.0,
        )
        fault.start()
        sim.run_until(5.0)
        first = fault.faulty_nodes
        assert len(first) == 3
        assert all(not net.node(n).usable for n in first)
        assert all(fault.fail_time_of(n) == 0.0 for n in first)
        sim.run_until(15.0)
        second = fault.faulty_nodes
        assert len(second) == 3
        for n in first - second:
            assert net.node(n).usable
        kinds = [e.kind for e in fault.events]
        assert kinds == ["inject", "recover", "inject"]
        assert fault.events[1].time == 10.0

    def test_stop_without_recover_leaves_damage(self):
        sim, net = build_grid()
        fault = CrashRotationFault(
            net, random.Random(5),
            count=lambda: 2, eligible=lambda: all_ids(net),
        )
        fault.start()
        sim.run_until(1.0)
        broken = fault.faulty_nodes
        fault.stop(recover=False)
        assert all(not net.node(n).usable for n in broken)
        assert fault.faulty_nodes == broken

    def test_stop_with_recover_heals(self):
        sim, net = build_grid()
        fault = CrashRotationFault(
            net, random.Random(5),
            count=lambda: 2, eligible=lambda: all_ids(net),
        )
        fault.start()
        sim.run_until(1.0)
        fault.stop()
        assert not fault.faulty_nodes
        assert all(net.node(n).usable for n in all_ids(net))


class TestPermanentCrash:
    def test_attrition_accumulates(self):
        sim, net = build_grid()
        fault = PermanentCrashFault(
            net, random.Random(2),
            count=lambda: 2, eligible=lambda: all_ids(net), period=5.0,
        )
        fault.start()
        sim.run_until(11.0)
        assert len(fault.faulty_nodes) == 6   # rounds at t = 0, 5, 10
        assert all(not net.node(n).usable for n in fault.faulty_nodes)
        assert all(e.kind == "inject" for e in fault.events)

    def test_rounds_cap(self):
        sim, net = build_grid()
        fault = PermanentCrashFault(
            net, random.Random(2),
            count=lambda: 2, eligible=lambda: all_ids(net),
            period=5.0, rounds=2,
        )
        fault.start()
        sim.run_until(30.0)
        assert fault.rounds == 2
        assert len(fault.faulty_nodes) == 4


class TestActuatorOutage:
    def test_targets_actuators_and_recovers(self):
        sim, net = build_grid(actuators=3)
        actuator_ids = [0, 1, 2]
        fault = ActuatorOutageFault(
            net, random.Random(3),
            count=lambda: 2, actuators=lambda: actuator_ids,
            period=20.0, duration=5.0,
        )
        fault.start()
        sim.run_until(1.0)
        down = fault.faulty_nodes
        assert len(down) == 2
        assert down <= set(actuator_ids)
        sim.run_until(6.0)   # past the outage duration
        assert not fault.faulty_nodes
        assert all(net.node(a).usable for a in actuator_ids)

    def test_duration_must_fit_period(self):
        sim, net = build_grid(actuators=2)
        with pytest.raises(ConfigError):
            ActuatorOutageFault(
                net, random.Random(1),
                count=lambda: 1, actuators=lambda: [0],
                period=5.0, duration=5.0,
            )


class TestRegionalBlackout:
    def test_disc_fails_and_recovers(self):
        sim, net = build_grid(spacing=70.0)
        center = Point(0.0, 0.0)
        fault = RegionalBlackoutFault(
            net, random.Random(4),
            area_side=210.0, radius=80.0, duration=5.0, period=20.0,
            center=center,
        )
        fault.start()
        sim.run_until(1.0)
        now = sim.now
        inside = {
            n for n in all_ids(net)
            if net.node(n).position(now).distance_to(center) <= 80.0
        }
        assert fault.faulty_nodes == inside
        assert inside                       # the corner nodes
        assert fault.last_center == center
        sim.run_until(6.0)
        assert not fault.faulty_nodes

    def test_random_center_inside_area(self):
        sim, net = build_grid()
        fault = RegionalBlackoutFault(
            net, random.Random(4),
            area_side=210.0, radius=60.0, duration=5.0, period=20.0,
        )
        fault.start()
        sim.run_until(1.0)
        assert fault.last_center is not None
        assert 0.0 <= fault.last_center.x <= 210.0
        assert 0.0 <= fault.last_center.y <= 210.0


class TestBatteryDepletion:
    def test_drains_below_threshold_not_dead(self):
        sim, net = build_grid()
        fault = BatteryDepletionFault(
            net, random.Random(6),
            count=lambda: 3, eligible=lambda: all_ids(net),
            target_fraction=0.02,
        )
        fault.start()
        sim.run_until(1.0)
        assert len(fault.drained) == 3
        for n in fault.drained:
            node = net.node(n)
            # The attack installs a meter and leaves a sliver of charge:
            # below any maintenance threshold, but still usable.
            assert node.battery_joules is not None
            assert node.usable
            assert node.battery_fraction <= 0.02 + 1e-9
        assert fault.active()

    def test_stop_does_not_restore_energy(self):
        sim, net = build_grid()
        fault = BatteryDepletionFault(
            net, random.Random(6),
            count=lambda: 2, eligible=lambda: all_ids(net),
        )
        fault.start()
        sim.run_until(1.0)
        drained = set(fault.drained)
        fault.stop()
        for n in drained:
            assert net.node(n).battery_fraction <= 0.02 + 1e-9
        assert fault.active()   # damage persists

    def test_respects_existing_meter(self):
        sim, net = build_grid()
        net.node(0).battery_joules = 500.0
        fault = BatteryDepletionFault(
            net, random.Random(6),
            count=lambda: 16, eligible=lambda: all_ids(net),
        )
        fault.start()
        sim.run_until(1.0)
        assert net.node(0).battery_joules == 500.0


class TestGilbertElliottLinks:
    def test_bad_state_gates_transmission(self):
        sim, net = build_grid()
        # Pathological sojourns: links are almost always BAD.
        fault = GilbertElliottLinkFault(
            net, random.Random(7), mean_good=0.01, mean_bad=100.0,
        )
        fault.start()
        assert fault.active()
        sim.run_until(5.0)
        now = sim.now
        adjacent = [
            (a, b)
            for a in all_ids(net)
            for b in all_ids(net)
            if a < b and net.node(a).in_range_of(net.node(b), now)
        ]
        down = [
            (a, b) for a, b in adjacent if not net.medium.can_transmit(a, b, now)
        ]
        assert down, "with mean_bad >> mean_good some links must be down"
        a, b = down[0]
        assert net.medium.link_quality(a, b, now) == 0.0
        # Symmetric: the chain is per undirected link.
        assert not net.medium.can_transmit(b, a, now)

    def test_stop_uninstalls(self):
        sim, net = build_grid()
        fault = GilbertElliottLinkFault(
            net, random.Random(7), mean_good=0.01, mean_bad=100.0,
        )
        fault.start()
        sim.run_until(5.0)
        fault.stop()
        assert not fault.active()
        assert net.medium.link_fault is None
        now = sim.now
        assert net.medium.can_transmit(0, 1, now)

    def test_eligible_restricts_links(self):
        sim, net = build_grid()
        fault = GilbertElliottLinkFault(
            net, random.Random(7), mean_good=0.01, mean_bad=100.0,
            eligible=[0, 1],
        )
        fault.start()
        sim.run_until(5.0)
        now = sim.now
        # Links with an endpoint outside the eligible set are untouched.
        assert net.medium.can_transmit(4, 5, now)

    def test_quality_scaled_not_cut(self):
        sim, net = build_grid()
        fault = GilbertElliottLinkFault(
            net, random.Random(7), mean_good=0.01, mean_bad=100.0,
            bad_quality=0.5,
        )
        fault.start()
        sim.run_until(5.0)
        now = sim.now
        healthy = net.medium.link_quality(0, 1, now)
        if not fault.link_up(0, 1, now):
            assert 0.0 < healthy < 1.0 or healthy == 0.0


class TestCoordinator:
    def test_merged_events_and_queries(self):
        sim, net = build_grid()
        chaos = ChaosCoordinator(net)
        rotation = chaos.add(CrashRotationFault(
            net, random.Random(1),
            count=lambda: 2, eligible=lambda: [0, 1, 2, 3], period=10.0,
        ))
        attrition = chaos.add(PermanentCrashFault(
            net, random.Random(2),
            count=lambda: 1, eligible=lambda: [8, 9, 10, 11],
            period=7.0, rounds=1,
        ))
        chaos.start([0.0, 3.0])
        sim.run_until(5.0)
        assert chaos.any_active()
        events = chaos.events()
        assert [e.time for e in events] == sorted(e.time for e in events)
        assert {e.model for e in events} == {"crash-rotation", "permanent-crash"}
        broken = rotation.faulty_nodes | attrition.faulty_nodes
        for n in broken:
            assert chaos.fail_time_of(n) is not None
        assert chaos.fail_time_of(15) is None
        chaos.stop()
        assert not rotation.faulty_nodes
        # Permanent damage is recovered at teardown stop() too.
        assert all(net.node(n).usable for n in [8, 9, 10, 11])
