"""Tests for FaultSpec validation and chaos-model construction."""

import random

import pytest

from repro.chaos import (
    ActuatorOutageFault,
    BatteryDepletionFault,
    CrashRotationFault,
    FaultSpec,
    GilbertElliottLinkFault,
    PermanentCrashFault,
    RegionalBlackoutFault,
    build_chaos_model,
)
from repro.errors import ConfigError
from repro.experiments.config import ScenarioConfig

KIND_TO_CLASS = {
    "rotation": CrashRotationFault,
    "permanent": PermanentCrashFault,
    "actuator": ActuatorOutageFault,
    "blackout": RegionalBlackoutFault,
    "battery": BatteryDepletionFault,
    "links": GilbertElliottLinkFault,
}


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="cosmic-rays")

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="rotation", count=-1)

    def test_bad_timing_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="rotation", period=0.0)
        with pytest.raises(ConfigError):
            FaultSpec(kind="rotation", start=-1.0)

    def test_outage_duration_must_fit_period(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="actuator", period=5.0, duration=5.0)
        with pytest.raises(ConfigError):
            FaultSpec(kind="blackout", period=5.0, duration=6.0)
        # Non-outage kinds don't care.
        FaultSpec(kind="rotation", period=5.0, duration=6.0)

    def test_spec_is_hashable(self):
        a = FaultSpec(kind="rotation", count=2)
        b = FaultSpec(kind="rotation", count=2)
        assert hash(a) == hash(b)
        assert a == b


class TestScenarioConfigIntegration:
    def test_bare_spec_normalised_to_tuple(self):
        spec = FaultSpec(kind="rotation")
        config = ScenarioConfig(fault_spec=spec)
        assert config.fault_spec == (spec,)

    def test_config_with_specs_is_hashable(self):
        config = ScenarioConfig(
            fault_spec=(FaultSpec(kind="rotation"), FaultSpec(kind="links"))
        )
        assert hash(("REFER", config))  # the runner's memo key

    def test_non_spec_entries_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(fault_spec=("rotation",))

    def test_invalid_probe_window_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(probe_window=0.0)


class TestBuildChaosModel:
    @pytest.mark.parametrize("kind", sorted(KIND_TO_CLASS))
    def test_kind_maps_to_model_class(self, kind):
        from tests.chaos.test_models import build_grid

        sim, net = build_grid(actuators=2)

        class FakeSystem:
            sensor_ids = [2, 3, 4, 5]
            actuator_ids = [0, 1]

        model = build_chaos_model(
            FaultSpec(kind=kind), net, FakeSystem(), random.Random(1),
            area_side=210.0,
        )
        assert isinstance(model, KIND_TO_CLASS[kind])
