"""Suppression-directive edge cases: the driver's comment parser.

The inline-suppression contract is load-bearing (a directive that
silently fails to apply turns CI red; one that applies too broadly
hides real findings), so the corner cases get their own suite:
multi-line statements under ``disable-next-line``, several directives
sharing a line, directives spelled inside string literals (data, not
directives), and comments at end-of-file.
"""

from repro.devtools import lint_source
from repro.devtools.driver import suppressions_by_line

LIB = "src/repro/net/example.py"


def ids(findings):
    return [f.rule_id for f in findings]


class TestMultiLineStatements:
    def test_next_line_covers_whole_multiline_statement(self):
        source = (
            "import time\n"
            "# referlint: disable-next-line=REF002\n"
            "t = max(\n"
            "    time.time(),\n"
            "    0.0,\n"
            ")\n"
        )
        assert lint_source(source, LIB) == []

    def test_next_line_does_not_bleed_past_the_statement(self):
        source = (
            "import time\n"
            "# referlint: disable-next-line=REF002\n"
            "t = max(\n"
            "    time.time(),\n"
            ")\n"
            "u = time.time()\n"
        )
        findings = lint_source(source, LIB)
        assert ids(findings) == ["REF002"]
        assert findings[0].line == 6

    def test_next_line_on_multiline_statement_first_line_finding(self):
        source = (
            "import time\n"
            "# referlint: disable-next-line=REF002\n"
            "t = time.time() + max(\n"
            "    0.0,\n"
            ")\n"
        )
        assert lint_source(source, LIB) == []


class TestStackedDirectives:
    def test_bare_disable_with_rule_specific_on_same_line(self):
        source = (
            "import random, time\n"
            "x = random.random() + time.time()"
            "  # referlint: disable=REF001  # referlint: disable\n"
        )
        assert lint_source(source, LIB) == []

    def test_two_rule_specific_directives_union(self):
        source = (
            "import random, time\n"
            "x = random.random() + time.time()"
            "  # referlint: disable=REF001  # referlint: disable=REF002\n"
        )
        assert lint_source(source, LIB) == []

    def test_rule_specific_directive_still_rule_specific(self):
        source = (
            "import random, time\n"
            "x = random.random() + time.time()"
            "  # referlint: disable=REF001\n"
        )
        assert ids(lint_source(source, LIB)) == ["REF002"]

    def test_same_line_and_next_line_directives_stack(self):
        source = (
            "import random, time\n"
            "# referlint: disable-next-line=REF001\n"
            "x = random.random() + time.time()"
            "  # referlint: disable=REF002\n"
        )
        assert lint_source(source, LIB) == []


class TestDirectivesInsideLiterals:
    def test_fstring_directive_is_data_not_directive(self):
        source = (
            "import random\n"
            'label = f"# referlint: disable=REF001 {random.random()}"\n'
        )
        findings = lint_source(source, LIB)
        assert ids(findings) == ["REF001"]
        assert findings[0].line == 2

    def test_plain_string_directive_is_data(self):
        source = (
            "import random\n"
            's = "# referlint: disable"; x = random.random()\n'
        )
        assert ids(lint_source(source, LIB)) == ["REF001"]

    def test_real_comment_after_string_still_works(self):
        source = (
            "import random\n"
            's = "text"; x = random.random()  # referlint: disable=REF001\n'
        )
        assert lint_source(source, LIB) == []


class TestEndOfFile:
    def test_directive_on_last_line_without_trailing_newline(self):
        source = (
            "import random\n"
            "x = random.random()  # referlint: disable=REF001"
        )
        assert lint_source(source, LIB) == []

    def test_next_line_at_eof_points_past_the_file(self):
        source = (
            "import random\n"
            "x = random.random()\n"
            "# referlint: disable-next-line=REF001"
        )
        findings = lint_source(source, LIB)
        assert ids(findings) == ["REF001"]
        assert findings[0].line == 2

    def test_comment_only_file(self):
        assert lint_source("# referlint: disable\n", LIB) == []


class TestSuppressionTable:
    def test_multiple_directives_per_line_are_all_read(self):
        table = suppressions_by_line(
            "x = 1  # referlint: disable=REF001 # referlint: disable=REF004\n"
        )
        assert table[1] == {"REF001", "REF004"}

    def test_unparsable_source_falls_back_to_raw_lines(self):
        # A broken file still honours directives (it reports REF000
        # anyway, but the table must not crash).
        table = suppressions_by_line(
            "def broken(:\n    pass  # referlint: disable=REF001\n"
        )
        assert table[2] == {"REF001"}
