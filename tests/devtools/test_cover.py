"""Tests for the stdlib coverage tool (repro.devtools.cover)."""

import pathlib
import sys

from repro.devtools.cover import (
    CoverageReport,
    FileCoverage,
    LineCoverage,
    build_universe,
    executable_lines,
    format_report,
)

SNIPPET = (
    '"""docstring does not count"""\n'
    "\n"
    "def branchy(x):\n"
    "    # comments do not count\n"
    "    if x:\n"
    "        return 1\n"
    "    return 2\n"
)


def write_snippet(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(SNIPPET, encoding="utf-8")
    return path.resolve()


class TestExecutableLines:
    def test_counts_code_not_docs_or_comments(self, tmp_path):
        lines = executable_lines(write_snippet(tmp_path))
        assert 3 in lines          # def header
        assert {5, 6, 7} <= lines  # branch bodies
        assert 2 not in lines      # blank
        assert 4 not in lines      # comment

    def test_nested_code_objects_included(self, tmp_path):
        path = tmp_path / "nested.py"
        path.write_text(
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n",
            encoding="utf-8",
        )
        lines = executable_lines(path.resolve())
        assert 3 in lines  # inner's body


class TestLineCoverage:
    def run_traced(self, path, calls):
        universe = {str(path): executable_lines(path)}
        tracer = LineCoverage(universe)
        code = compile(
            path.read_text(encoding="utf-8"), str(path), "exec"
        )
        namespace = {}
        tracer.start()
        try:
            exec(code, namespace)  # noqa: S102 - fixture code
            for arg in calls:
                namespace["branchy"](arg)
        finally:
            tracer.stop()
        return tracer.report()

    def test_partial_branch_coverage(self, tmp_path):
        path = write_snippet(tmp_path)
        report = self.run_traced(path, calls=[True])
        (entry,) = report.files
        assert entry.covered == entry.executable - 1   # `return 2` missed
        assert 0.0 < report.percent < 100.0

    def test_full_coverage_after_both_branches(self, tmp_path):
        path = write_snippet(tmp_path)
        report = self.run_traced(path, calls=[True, False])
        (entry,) = report.files
        assert entry.covered == entry.executable
        assert report.percent == 100.0

    def test_saturated_code_stops_tracing(self, tmp_path):
        path = write_snippet(tmp_path)
        universe = {str(path): executable_lines(path)}
        tracer = LineCoverage(universe)
        code = compile(
            path.read_text(encoding="utf-8"), str(path), "exec"
        )
        namespace = {}
        tracer.start()
        try:
            exec(code, namespace)  # noqa: S102 - fixture code
            namespace["branchy"](True)
            namespace["branchy"](False)
        finally:
            tracer.stop()
        func_code = namespace["branchy"].__code__
        assert func_code in tracer._saturated

    def test_stop_restores_enclosing_tracer(self, tmp_path):
        # When the coverage gate runs this very test file, its own
        # settrace hook is the enclosing tracer; a nested measurement
        # clearing it would blind the gate for the rest of the suite.
        events = []

        def outer(frame, event, arg):
            events.append(event)
            return None

        path = write_snippet(tmp_path)
        universe = {str(path): executable_lines(path)}
        prev = sys.gettrace()
        sys.settrace(outer)
        try:
            tracer = LineCoverage(universe)
            tracer.start()
            tracer.stop()
            assert sys.gettrace() is outer
        finally:
            sys.settrace(prev)


class TestUniverse:
    def test_devtools_excluded_and_repro_included(self):
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        universe = build_universe(root)
        assert not any("devtools" in name for name in universe)
        assert any(name.endswith("spatial.py") for name in universe)

    def test_already_imported_files_excluded(self):
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        spatial = str((root / "net" / "spatial.py").resolve())
        universe = build_universe(root, already_imported=[spatial])
        assert spatial not in universe


class TestReportFormatting:
    def test_totals_and_gate_math(self):
        report = CoverageReport(
            files=(
                FileCoverage(path="/x/a.py", executable=80, covered=60),
                FileCoverage(path="/x/b.py", executable=20, covered=20),
            )
        )
        assert report.executable == 100
        assert report.covered == 80
        assert report.percent == 80.0
        text = format_report(report, pathlib.Path("/x"), verbose=False)
        assert "TOTAL 80/100 lines = 80.0%" in text

    def test_empty_report_is_100(self):
        assert CoverageReport(files=()).percent == 100.0
        assert FileCoverage("/x/a.py", 0, 0).percent == 100.0
