"""CLI semantics: exit codes, formats, baselines, planted violations.

Runs :func:`repro.devtools.lint.main` in-process (capturing stdout) —
the same code path ``python -m repro.devtools.lint`` executes.
"""

import json
import os

import pytest

from repro.devtools.lint import main


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A minimal clean src-like tree, with the CWD placed inside it."""
    pkg = tmp_path / "src" / "repro" / "net"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(
        '"""A clean module."""\n\ndef f(x):\n    return x + 1\n'
    )
    monkeypatch.chdir(tmp_path)
    return tmp_path


def plant_violation(tree):
    (tree / "src" / "repro" / "net" / "bad.py").write_text(
        "import random\nx = random.random()\n"
    )


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main(["src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_planted_ref001_violation_fails_cli(self, tree, capsys):
        plant_violation(tree)
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "REF001" in out
        assert "bad.py" in out

    def test_missing_path_is_usage_error(self, tree, capsys):
        assert main(["no/such/dir"]) == 2

    def test_unknown_rule_id_is_usage_error(self, tree, capsys):
        assert main(["--select", "REF999", "src"]) == 2

    def test_syntax_error_fails_the_run(self, tree):
        (tree / "src" / "repro" / "net" / "broken.py").write_text("def (:\n")
        assert main(["src"]) == 1


class TestFormats:
    def test_json_format(self, tree, capsys):
        plant_violation(tree)
        assert main(["--format", "json", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "REF001"
        assert finding["path"].endswith("bad.py")
        assert finding["line"] == 2
        assert finding["severity"] == "error"

    def test_text_format_is_path_line_col(self, tree, capsys):
        plant_violation(tree)
        main(["src"])
        first = capsys.readouterr().out.splitlines()[0]
        assert first.startswith("src/repro/net/bad.py:2:")
        assert "REF001 error:" in first

    def test_list_rules_prints_the_pack(self, tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REF001", "REF002", "REF003", "REF004", "REF005", "REF006"):
            assert rule_id in out


class TestSelect:
    def test_select_runs_only_named_rules(self, tree, capsys):
        plant_violation(tree)
        assert main(["--select", "REF002", "src"]) == 0
        assert main(["--select", "REF001", "src"]) == 1


class TestBaselineFlow:
    def test_write_then_lint_exits_zero(self, tree, capsys):
        plant_violation(tree)
        assert main(["--write-baseline", "src"]) == 0
        assert os.path.exists("referlint-baseline.json")
        # The grandfathered finding is hidden...
        assert main(["src"]) == 0
        assert "baselined" in capsys.readouterr().out
        # ...but a second, new violation still fails.
        (tree / "src" / "repro" / "net" / "worse.py").write_text(
            "import random\nrandom.seed(1)\n"
        )
        assert main(["src"]) == 1

    def test_no_baseline_flag_ignores_the_file(self, tree):
        plant_violation(tree)
        main(["--write-baseline", "src"])
        assert main(["--no-baseline", "src"]) == 1

    def test_explicit_baseline_path(self, tree, tmp_path_factory):
        plant_violation(tree)
        target = tmp_path_factory.mktemp("bl") / "custom.json"
        assert main(["--write-baseline", "--baseline", str(target), "src"]) == 0
        assert main(["--baseline", str(target), "src"]) == 0
        assert not os.path.exists("referlint-baseline.json")

    def test_corrupt_baseline_is_usage_error(self, tree):
        plant_violation(tree)
        with open("referlint-baseline.json", "w") as handle:
            handle.write("{not json")
        assert main(["src"]) == 2


class TestPruneBaseline:
    def test_tight_baseline_exits_zero(self, tree, capsys):
        plant_violation(tree)
        main(["--write-baseline", "src"])
        assert main(["--prune-baseline", "src"]) == 0
        assert "tight" in capsys.readouterr().out

    def test_stale_entry_is_pruned_and_fails(self, tree, capsys):
        plant_violation(tree)
        main(["--write-baseline", "src"])
        # Fix the violation without touching the baseline: stale.
        (tree / "src" / "repro" / "net" / "bad.py").write_text(
            '"""Fixed."""\n'
        )
        assert main(["--prune-baseline", "src"]) == 1
        out = capsys.readouterr().out
        assert "pruned stale baseline entry" in out
        assert "REF001" in out
        # The rewrite is durable: a second prune finds nothing stale,
        # and a plain lint still passes.
        assert main(["--prune-baseline", "src"]) == 0
        assert main(["src"]) == 0

    def test_prune_keeps_still_live_entries(self, tree, capsys):
        plant_violation(tree)
        (tree / "src" / "repro" / "net" / "worse.py").write_text(
            "import random\nrandom.seed(1)\n"
        )
        main(["--write-baseline", "src"])
        (tree / "src" / "repro" / "net" / "worse.py").write_text(
            '"""Fixed."""\n'
        )
        assert main(["--prune-baseline", "src"]) == 1
        # bad.py's entry survived the prune: still grandfathered.
        assert main(["src"]) == 0

    def test_prune_without_baseline_is_usage_error(self, tree, capsys):
        assert main(["--prune-baseline", "src"]) == 2
        assert "needs a baseline" in capsys.readouterr().err

    def test_prune_respects_multiset_counts(self, tree, capsys):
        (tree / "src" / "repro" / "net" / "two.py").write_text(
            "import random\nx = random.random()\ny = random.random()\n"
        )
        main(["--write-baseline", "src"])
        (tree / "src" / "repro" / "net" / "two.py").write_text(
            "import random\nx = random.random()\n"
        )
        assert main(["--prune-baseline", "src"]) == 1
        assert main(["src"]) == 0
        # Re-introducing the second copy is a *new* finding again.
        (tree / "src" / "repro" / "net" / "two.py").write_text(
            "import random\nx = random.random()\ny = random.random()\n"
        )
        assert main(["src"]) == 1


class TestModuleInvocation:
    def test_python_dash_m_entry_point(self, tree):
        # The real subprocess invocation CI uses.
        import subprocess
        import sys

        plant_violation(tree)
        env = dict(os.environ)
        repo_src = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = os.path.join(repo_src, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "src"],
            capture_output=True,
            text=True,
            cwd=str(tree),
            env=env,
        )
        assert proc.returncode == 1
        assert "REF001" in proc.stdout
