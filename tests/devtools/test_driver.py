"""Framework semantics: suppressions, baselines, ordering, bad files."""

import ast

import pytest

from repro.devtools import (
    Baseline,
    Finding,
    Rule,
    RuleContext,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.devtools.driver import PARSE_ERROR, iter_python_files

LIB = "src/repro/net/example.py"


class TestSuppressions:
    def test_same_line_disable_specific_rule(self):
        source = "import random\nx = random.random()  # referlint: disable=REF001\n"
        assert lint_source(source, LIB) == []

    def test_disable_is_rule_specific(self):
        source = "import random\nx = random.random()  # referlint: disable=REF002\n"
        assert [f.rule_id for f in lint_source(source, LIB)] == ["REF001"]

    def test_bare_disable_suppresses_all_rules(self):
        source = "import time\nt = time.time()  # referlint: disable\n"
        assert lint_source(source, LIB) == []

    def test_disable_next_line(self):
        source = (
            "import random\n"
            "# referlint: disable-next-line=REF001\n"
            "x = random.random()\n"
        )
        assert lint_source(source, LIB) == []

    def test_disable_several_rules_in_one_comment(self):
        source = (
            "import random, time\n"
            "x = random.random() + time.time()"
            "  # referlint: disable=REF001, REF002\n"
        )
        assert lint_source(source, LIB) == []

    def test_suppression_only_covers_its_line(self):
        source = (
            "import random\n"
            "a = random.random()  # referlint: disable=REF001\n"
            "b = random.random()\n"
        )
        findings = lint_source(source, LIB)
        assert [(f.rule_id, f.line) for f in findings] == [("REF001", 3)]


class TestBaseline:
    def finding(self, message="m", line=1, path="p.py", rule="REF001"):
        return Finding(
            path=path, line=line, col=1, rule_id=rule, message=message
        )

    def test_split_partitions_new_and_baselined(self):
        old, fresh = self.finding("old"), self.finding("fresh")
        baseline = Baseline.from_findings([old])
        new, baselined = baseline.split([old, fresh])
        assert new == [fresh]
        assert baselined == [old]

    def test_matching_ignores_line_numbers(self):
        baseline = Baseline.from_findings([self.finding(line=10)])
        new, baselined = baseline.split([self.finding(line=99)])
        assert new == [] and len(baselined) == 1

    def test_multiset_semantics(self):
        # One grandfathered copy absorbs exactly one occurrence.
        baseline = Baseline.from_findings([self.finding()])
        new, baselined = baseline.split([self.finding(), self.finding(line=2)])
        assert len(new) == 1 and len(baselined) == 1

    def test_round_trip_through_disk(self, tmp_path):
        baseline = Baseline.from_findings(
            [self.finding("a"), self.finding("a"), self.finding("b")]
        )
        target = tmp_path / "baseline.json"
        baseline.save(str(target))
        loaded = Baseline.load(str(target))
        assert len(loaded) == 3
        new, _ = loaded.split([self.finding("a"), self.finding("b")])
        assert new == []

    def test_unknown_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(str(target))


class TestDriver:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n", LIB)
        assert [f.rule_id for f in findings] == [PARSE_ERROR]

    def test_findings_sorted_by_location(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "net"
        pkg.mkdir(parents=True)
        (pkg / "b.py").write_text("import random\nx = random.random()\n")
        (pkg / "a.py").write_text(
            "import time\nt = time.time()\nu = time.time()\n"
        )
        findings = lint_paths([str(tmp_path)])
        keys = [(f.path, f.line) for f in findings]
        assert keys == sorted(keys)
        assert len(findings) == 3

    def test_iter_python_files_skips_pycache(self, tmp_path):
        good = tmp_path / "m.py"
        good.write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "m.cpython-311.py").write_text("x = 1\n")
        assert list(iter_python_files([str(tmp_path)])) == [str(good)]

    def test_lint_file_reads_from_disk(self, tmp_path):
        target = tmp_path / "src" / "repro" / "net" / "m.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nrandom.seed(0)\n")
        findings = lint_file(str(target))
        assert [f.rule_id for f in findings] == ["REF001"]

    def test_unreadable_file_becomes_finding(self, tmp_path):
        findings = lint_file(str(tmp_path / "missing.py"))
        assert [f.rule_id for f in findings] == [PARSE_ERROR]

    def test_custom_rule_and_finish_hook(self):
        class CountCalls(Rule):
            rule_id = "TST001"
            title = "test rule"
            node_types = (ast.Call,)

            def __init__(self):
                self.calls = 0

            def visit(self, node, ctx):
                self.calls += 1

            def finish(self, tree, ctx):
                ctx.report(self, tree.body[0], f"saw {self.calls} calls")

        findings = lint_source("f()\ng()\n", "m.py", rules=[CountCalls()])
        assert len(findings) == 1
        assert findings[0].message == "saw 2 calls"

    def test_rule_scoping_uses_context(self):
        ctx = RuleContext("src/repro/wsan/x.py", "")
        assert ctx.in_directory("wsan")
        assert not ctx.in_directory("sim", "net", "core")
        assert not ctx.is_test_file
