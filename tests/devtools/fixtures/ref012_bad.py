"""Known-bad: a wall-clock value laundered through a local helper."""

import time


def wall_helper():
    return time.time()  # EXPECT: REF002


def deadline(sim):
    start = wall_helper()  # EXPECT: REF012
    return start + sim.now
