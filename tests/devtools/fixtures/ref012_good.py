"""Known-good: sim-clock timestamps; helpers of unknown provenance."""


def sim_helper(sim):
    return sim.now


def deadline(sim, budget):
    start = sim_helper(sim)
    return start + budget


def unknown_callable_is_trusted(sim, helper):
    return helper() + sim.now
