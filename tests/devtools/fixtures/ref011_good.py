"""Known-good: fsum, counting, and sorted-first accumulation."""

import math


def total_load(cells):
    pending = set(cells)
    return math.fsum(pending)


def counted(cells):
    count = 0
    for _cell in set(cells):
        count += 1
    return count


def ordered_total(cells):
    total = 0.0
    for cell in sorted(set(cells)):
        total += cell
    return total


def plain_list_total(cells):
    total = 0.0
    for cell in list(cells):
        total += cell
    return total
