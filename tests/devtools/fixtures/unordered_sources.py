"""Seeded determinism bug for the divergence-debugger tests.

``apply()`` patches :meth:`CbrWorkload._open_window` so the per-window
source list comes back *sorted* instead of in sample order — the
classic unordered-iteration bug (iterating a set where order was
load-bearing).  The RNG draw sequence is unchanged (same ``sample``,
same ``uniform`` calls), but the stagger offsets land on different
sources, so packet emission forks from the very first window.

``revert()`` restores the original method; the divergence CLI calls it
automatically after the run it patched.
"""

from repro.experiments.workload import CbrWorkload

_original = CbrWorkload._open_window


def _patched(self):
    real_sample = self._rng.sample
    self._rng.sample = lambda population, k: sorted(real_sample(population, k))
    try:
        _original(self)
    finally:
        del self._rng.sample


# Keep the dispatch label identical to the unpatched method so the
# debugger localises the *behavioural* fork (packets emitted by the
# wrong source), not the patch itself.
_patched.__qualname__ = _original.__qualname__


def apply():
    CbrWorkload._open_window = _patched


def revert():
    CbrWorkload._open_window = _original
