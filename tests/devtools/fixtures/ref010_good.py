"""Known-good: stable-identity keys; hash() of hashable content."""


def rank(nodes):
    ordered = sorted(nodes, key=lambda n: n.node_id)
    by_id = {n.node_id: n for n in nodes}
    return ordered, by_id


def tie_break(first, second):
    if first.node_id < second.node_id:
        return first
    return second


def index_by_id(table, obj):
    table[obj.node_id] = obj
    return table


def literal_hash_is_fine():
    return hash("refer")
