"""Known-bad: unordered iteration driving scheduling, draws, emission."""


def schedule_members(sim, members, rng):
    active = set(members)
    for node in active:
        sim.schedule(1.0, node.tick)  # EXPECT: REF008
    for node in active:
        delay = rng.random()  # EXPECT: REF008
        sim.call_later(delay, node.poke)  # EXPECT: REF008
    return delay


def neighbour_list(adjacency):
    neighbours = set(adjacency)
    return list(neighbours)  # EXPECT: REF008


def via_dict_view(load_by_node):
    heavy = {n for n, load in load_by_node.items() if load > 2}
    index = dict.fromkeys(heavy)
    return tuple(index.keys())  # EXPECT: REF008
