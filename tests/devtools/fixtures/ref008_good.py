"""Known-good: sorted or order-free consumption of unordered values."""

import math


def schedule_members(sim, members):
    active = set(members)
    for node in sorted(active):
        sim.schedule(1.0, node.tick)
    return sorted(active)


def draw_in_order(sim, members, rng):
    for node in sorted(set(members)):
        sim.call_later(rng.random(), node.poke)


def order_free_consumption(members):
    active = set(members)
    return len(active), any(active), max(active), math.fsum(active)


def ordinary_list_iteration(sim, members):
    queue = list(members)
    for node in queue:
        sim.schedule(1.0, node.tick)
    return queue
