"""Known-bad: ad-hoc generators and undisciplined stream names."""

import random


def make_generators(streams, label):
    ad_hoc = random.Random(7)  # EXPECT: REF009
    unknown = streams.stream("definitely-not-registered")  # EXPECT: REF009
    dynamic = streams.stream(label)  # EXPECT: REF009
    loose = streams.stream(f"mystery.{label}")  # EXPECT: REF009
    return ad_hoc, unknown, dynamic, loose
