"""Helper package of the interprocedural corpus.

Wall-clock reads are *legal* here (``util`` is outside the sim scope);
the violation only exists once a sim-side module consumes the values.
"""

import time


def read_clock():
    return time.time()


def indirect_clock():
    return read_clock()


def make_bucket(items):
    return set(items)
