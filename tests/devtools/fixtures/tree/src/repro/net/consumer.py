"""Sim-side module of the interprocedural corpus.

No ``time.`` spelling and no ``set`` literal appears in this file —
every finding here requires taint carried across the module boundary
by the project call-graph summaries.
"""

from repro.util.helpers import indirect_clock, make_bucket, read_clock


def deadline(sim):
    start = read_clock()  # EXPECT: REF012
    return start + sim.now


def chained_deadline(sim):
    start = indirect_clock()  # EXPECT: REF012
    return start + sim.now


def fanout(sim, items):
    for item in make_bucket(items):
        sim.schedule(1.0, item.tick)  # EXPECT: REF008


def ordered_fanout(sim, items):
    for item in sorted(make_bucket(items)):
        sim.schedule(1.0, item.tick)
