"""Known-good: registered literal names; a declared dynamic family."""


def make_generators(streams, index, kind):
    mac = streams.stream("mac")
    detector = streams.stream("recovery.detector")
    fault = streams.stream(f"chaos.{index}.{kind}")
    return mac, detector, fault
