"""Known-bad: memory addresses used as keys, orderings, comparisons."""


def rank(nodes):
    ordered = sorted(nodes, key=id)  # EXPECT: REF010
    by_addr = {id(n): n for n in nodes}  # EXPECT: REF010
    return ordered, by_addr


def tie_break(first, second):
    if id(first) < id(second):  # EXPECT: REF010
        return first
    return second


def index_by_hash(table, obj):
    table[hash(obj)] = obj  # EXPECT: REF010
    return table


def collect(nodes):
    seen = set()
    for node in nodes:
        seen.add(id(node))  # EXPECT: REF010
    return seen
