"""Known-bad: order-sensitive float reductions over unordered values."""


def total_load(cells):
    pending = set(cells)
    return sum(pending)  # EXPECT: REF011


def drift(cells):
    total = 0.0
    for cell in set(cells):
        total += cell.load  # EXPECT: REF011
    return total


def weighted(weights):
    acc = 0.0
    heavy = frozenset(weights)
    for w in heavy:
        acc += w * 0.5  # EXPECT: REF011
    return acc
