"""Unit tests for the cross-module call graph and summary fixpoint."""

import ast

from repro.devtools.callgraph import MAX_ROUNDS, Project
from repro.devtools.dataflow import UNORDERED, WALLCLOCK


def build(*modules):
    """Project from ``(path, source)`` pairs."""
    return Project.build(
        [(path, ast.parse(source)) for path, source in modules]
    )


CLOCK = (
    "src/repro/util/clock.py",
    "import time\n"
    "def read():\n"
    "    return time.time()\n",
)


class TestSummaryConvergence:
    def test_cross_module_wallclock_summary(self):
        project = build(CLOCK)
        s = project.summaries["repro.util.clock.read"]
        assert s.returns & WALLCLOCK
        assert s.wall_source == "time.time"

    def test_taint_crosses_module_boundary(self):
        project = build(
            CLOCK,
            (
                "src/repro/util/indirect.py",
                "from repro.util.clock import read\n"
                "def relay():\n"
                "    return read()\n",
            ),
        )
        s = project.summaries["repro.util.indirect.relay"]
        assert s.returns & WALLCLOCK
        assert s.wall_source == "time.time"

    def test_helper_chain_converges_within_round_budget(self):
        # A chain of helpers, each in its own module, longer than one
        # round can resolve: path ordering (a < b < c...) is the worst
        # case when the source sits in the last module.
        chain = [
            (
                "src/repro/util/z_source.py",
                "import time\ndef h0():\n    return time.time()\n",
            )
        ]
        for i in range(1, MAX_ROUNDS - 1):
            chain.append(
                (
                    f"src/repro/util/a{i:02d}.py",
                    f"from repro.util.z_source import h0\n"
                    f"from repro.util.a{i - 1:02d} import h{i - 1}\n"
                    f"def h{i}():\n"
                    f"    return h{i - 1}()\n"
                    if i > 1
                    else "from repro.util.z_source import h0\n"
                    "def h1():\n"
                    "    return h0()\n",
                )
            )
        project = build(*chain)
        top = f"repro.util.a{MAX_ROUNDS - 2:02d}.h{MAX_ROUNDS - 2}"
        assert project.summaries[top].returns & WALLCLOCK
        assert project.rounds <= MAX_ROUNDS

    def test_unordered_summary_crosses_modules(self):
        project = build(
            (
                "src/repro/core/sets.py",
                "def bucket(xs):\n    return set(xs)\n",
            ),
            (
                "src/repro/net/user.py",
                "from repro.core.sets import bucket\n"
                "def f(xs):\n"
                "    return bucket(xs)\n",
            ),
        )
        assert project.summaries["repro.net.user.f"].returns & UNORDERED

    def test_recursion_terminates(self):
        project = build(
            (
                "src/repro/util/loop.py",
                "def a(n):\n"
                "    return b(n - 1) if n else 0\n"
                "def b(n):\n"
                "    return a(n - 1) if n else 0\n",
            )
        )
        assert project.rounds <= MAX_ROUNDS


class TestStreamUses:
    def test_literal_and_dynamic_uses_recorded(self):
        project = build(
            (
                "src/repro/experiments/runner.py",
                "def go(streams, i):\n"
                "    a = streams.stream('mac')\n"
                "    b = streams.stream(f'chaos.{i}.crash')\n"
                "    return a, b\n",
            )
        )
        names = [use.name for use in project.stream_uses]
        assert names == ["mac", None]

    def test_stream_packages_maps_library_packages(self):
        project = build(
            (
                "src/repro/experiments/runner.py",
                "def go(s):\n    return s.stream('mac')\n",
            ),
            (
                "src/repro/chaos/models.py",
                "def go(s):\n    return s.stream('mac')\n",
            ),
        )
        assert project.stream_packages()["mac"] == ["chaos", "experiments"]

    def test_driver_scripts_outside_repro_are_exempt(self):
        project = build(
            (
                "src/repro/experiments/runner.py",
                "def go(s):\n    return s.stream('mac')\n",
            ),
            (
                "benchmarks/bench_thing.py",
                "def go(s):\n    return s.stream('mac')\n",
            ),
        )
        assert project.stream_packages()["mac"] == ["experiments"]


class TestFlowLookup:
    def test_flow_for_known_and_unknown_paths(self):
        project = build(CLOCK)
        assert project.flow_for("src/repro/util/clock.py") is not None
        assert project.flow_for("src/repro/util/other.py") is None
