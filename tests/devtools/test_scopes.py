"""Unit tests for the symbol-table / scope-resolution layer."""

import ast

from repro.devtools.scopes import (
    FUNCTION,
    IMPORT,
    LOCAL,
    MODULE_IMPORT,
    PARAM,
    build_scopes,
    module_name_for_path,
)


def scopes_for(source, path="src/repro/net/example.py"):
    tree = ast.parse(source)
    return tree, build_scopes(tree, path)


def find(tree, node_type, name=None):
    for node in ast.walk(tree):
        if isinstance(node, node_type) and (
            name is None or getattr(node, "name", None) == name
        ):
            return node
    raise AssertionError(f"no {node_type.__name__} named {name}")


class TestModuleName:
    def test_src_layout(self):
        assert module_name_for_path("src/repro/net/medium.py") == (
            "repro.net.medium"
        )

    def test_package_init(self):
        assert module_name_for_path("src/repro/net/__init__.py") == "repro.net"

    def test_outside_repro_falls_back_to_stem(self):
        assert module_name_for_path("scratch/tool.py") == "tool"

    def test_windows_separators(self):
        assert module_name_for_path("src\\repro\\util\\rng.py") == (
            "repro.util.rng"
        )


class TestBindings:
    def test_import_kinds(self):
        _, scopes = scopes_for(
            "import time\n"
            "import os.path as osp\n"
            "from math import fsum\n"
        )
        mod = scopes.module
        assert mod.bindings["time"].kind == MODULE_IMPORT
        assert mod.bindings["osp"].kind == IMPORT
        assert mod.bindings["osp"].target == "os.path"
        assert mod.bindings["fsum"].target == "math.fsum"

    def test_relative_import_anchored_to_package(self):
        _, scopes = scopes_for(
            "from .medium import WirelessMedium\n",
            path="src/repro/net/router.py",
        )
        binding = scopes.module.bindings["WirelessMedium"]
        assert binding.target == "repro.net.medium.WirelessMedium"

    def test_def_binding_beats_later_reassignment(self):
        _, scopes = scopes_for(
            "def helper():\n"
            "    return 1\n"
            "helper = memoize(helper)\n"
        )
        binding = scopes.module.bindings["helper"]
        assert binding.kind == FUNCTION
        assert binding.target == "repro.net.example.helper"

    def test_params_and_locals(self):
        tree, scopes = scopes_for(
            "def f(x):\n"
            "    y = x\n"
            "    return y\n"
        )
        scope = scopes.scope_of(find(tree, ast.FunctionDef, "f"))
        assert scope.bindings["x"].kind == PARAM
        assert scope.bindings["y"].kind == LOCAL


class TestResolution:
    def test_nested_function_skips_class_scope(self):
        tree, scopes = scopes_for(
            "import time\n"
            "class C:\n"
            "    time = 'shadow'\n"
            "    def m(self):\n"
            "        return time\n"
        )
        method = scopes.scope_of(find(tree, ast.FunctionDef, "m"))
        binding = method.resolve("time")
        assert binding.kind == MODULE_IMPORT

    def test_class_body_sees_its_own_names(self):
        tree, scopes = scopes_for(
            "class C:\n"
            "    x = 1\n"
        )
        klass = scopes.scope_of(find(tree, ast.ClassDef, "C"))
        assert klass.resolve("x").kind == LOCAL

    def test_global_declaration_resolves_at_module(self):
        tree, scopes = scopes_for(
            "import time\n"
            "def f():\n"
            "    global time\n"
            "    return time\n"
        )
        scope = scopes.scope_of(find(tree, ast.FunctionDef, "f"))
        assert scope.resolve("time").kind == MODULE_IMPORT


class TestQualifiedNames:
    def test_attribute_chain_through_module_import(self):
        tree, scopes = scopes_for("import time\nt = time.time()\n")
        call = find(tree, ast.Call)
        assert scopes.qualified_name(call.func, scopes.module) == "time.time"

    def test_aliased_import_expands(self):
        tree, scopes = scopes_for(
            "import datetime as dt\nt = dt.datetime.now()\n"
        )
        call = find(tree, ast.Call)
        assert scopes.qualified_name(call.func, scopes.module) == (
            "datetime.datetime.now"
        )

    def test_local_function_gets_module_qualname(self):
        tree, scopes = scopes_for(
            "def helper():\n"
            "    return 1\n"
            "x = helper()\n"
        )
        call = [n for n in ast.walk(tree) if isinstance(n, ast.Call)][0]
        assert scopes.qualified_name(call.func, scopes.module) == (
            "repro.net.example.helper"
        )

    def test_self_method_resolves_via_enclosing_class(self):
        tree, scopes = scopes_for(
            "class Medium:\n"
            "    def refresh(self):\n"
            "        return 1\n"
            "    def tick(self):\n"
            "        return self.refresh()\n"
        )
        tick = scopes.scope_of(find(tree, ast.FunctionDef, "tick"))
        call = find(find(tree, ast.FunctionDef, "tick"), ast.Call)
        assert scopes.qualified_name(call.func, tick) == (
            "repro.net.example.Medium.refresh"
        )

    def test_unresolved_root_falls_back_to_bare_spelling(self):
        tree, scopes = scopes_for("x = sorted([3, 1])\n")
        call = find(tree, ast.Call)
        assert scopes.qualified_name(call.func, scopes.module) == "sorted"

    def test_shadowed_local_resolves_to_none(self):
        tree, scopes = scopes_for(
            "def f(sorted):\n"
            "    return sorted([1])\n"
        )
        scope = scopes.scope_of(find(tree, ast.FunctionDef, "f"))
        call = find(tree, ast.Call)
        assert scopes.qualified_name(call.func, scope) is None
