"""The analyzer self-test corpus: REF008–REF012 against real fixtures.

Every ``refNNN_bad.py`` fixture marks its violations with an
``# EXPECT: REFNNN`` comment on the offending line; the test asserts
the linter reports **exactly** that multiset of ``(line, rule)`` pairs
— extra findings are false positives, missing ones are false
negatives, and a drifted line number is an anchoring bug.  The
``refNNN_good.py`` twins are near-miss code that must produce zero
findings.

Fixtures are linted under fake ``src/repro/...`` paths (their real
home under ``tests/`` would classify them as test files and relax the
very rules under test).  The ``tree/`` corpus goes through
:func:`lint_paths` from a temporary copy so the interprocedural taint
must travel through the project call-graph summaries, exactly as in a
full-tree CI run.
"""

import re
import shutil
from pathlib import Path

import pytest

from repro.devtools import lint_source
from repro.devtools.driver import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([A-Z0-9_,\s]+)")


def expected_markers(source: str):
    """Sorted ``(line, rule_id)`` pairs declared by EXPECT comments."""
    expected = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(text)
        if match:
            for rule_id in match.group(1).split(","):
                expected.append((lineno, rule_id.strip()))
    return sorted(expected)


def found(findings):
    return sorted((f.line, f.rule_id) for f in findings)


BAD_FIXTURES = [
    ("ref008_bad.py", "src/repro/net/ref008_bad.py"),
    ("ref009_bad.py", "src/repro/net/ref009_bad.py"),
    ("ref010_bad.py", "src/repro/kautz/ref010_bad.py"),
    ("ref011_bad.py", "src/repro/core/ref011_bad.py"),
    ("ref012_bad.py", "src/repro/sim/ref012_bad.py"),
]

GOOD_FIXTURES = [
    ("ref008_good.py", "src/repro/net/ref008_good.py"),
    ("ref009_good.py", "src/repro/net/ref009_good.py"),
    ("ref010_good.py", "src/repro/kautz/ref010_good.py"),
    ("ref011_good.py", "src/repro/core/ref011_good.py"),
    ("ref012_good.py", "src/repro/sim/ref012_good.py"),
]


@pytest.mark.parametrize("fixture,lint_path", BAD_FIXTURES)
def test_known_bad_fixture_flags_exact_lines(fixture, lint_path):
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    expected = expected_markers(source)
    assert expected, f"{fixture} declares no EXPECT markers"
    assert found(lint_source(source, lint_path)) == expected


@pytest.mark.parametrize("fixture,lint_path", GOOD_FIXTURES)
def test_known_good_fixture_is_silent(fixture, lint_path):
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    assert expected_markers(source) == []
    assert lint_source(source, lint_path) == []


class TestInterproceduralTree:
    """Taint crossing a real module boundary via lint_paths."""

    @pytest.fixture
    def tree_root(self, tmp_path):
        root = tmp_path / "proj"
        shutil.copytree(FIXTURES / "tree", root)
        return root

    def test_cross_module_taint_matches_markers(self, tree_root):
        consumer = tree_root / "src" / "repro" / "net" / "consumer.py"
        expected = expected_markers(consumer.read_text(encoding="utf-8"))
        assert expected

        findings = lint_paths([str(tree_root)])
        got = sorted(
            (f.line, f.rule_id)
            for f in findings
            if f.path.endswith("consumer.py")
        )
        assert got == expected
        # The helper module itself is outside the sim scope: clean.
        assert [f for f in findings if f.path.endswith("helpers.py")] == []

    def test_stream_sharing_across_packages_flagged(self, tmp_path):
        for pkg in ("chaos", "recovery"):
            mod = tmp_path / "src" / "repro" / pkg
            mod.mkdir(parents=True)
            (mod / "draw.py").write_text(
                "def go(streams):\n"
                "    return streams.stream('mac')\n",
                encoding="utf-8",
            )
        findings = lint_paths([str(tmp_path)])
        shared = [f for f in findings if "multiple subsystem" in f.message]
        assert len(shared) == 2  # anchored once per using file
        assert all(f.rule_id == "REF009" for f in shared)
        assert all("chaos, recovery" in f.message for f in shared)

    def test_stale_registry_entry_flagged_at_registry(self, tmp_path):
        util = tmp_path / "src" / "repro" / "util"
        util.mkdir(parents=True)
        (util / "rng.py").write_text(
            "KNOWN_STREAM_NAMES = frozenset({'mac', 'faults'})\n",
            encoding="utf-8",
        )
        exp = tmp_path / "src" / "repro" / "experiments"
        exp.mkdir(parents=True)
        (exp / "runner.py").write_text(
            "def go(streams):\n"
            "    return streams.stream('mac')\n",
            encoding="utf-8",
        )
        findings = [
            f for f in lint_paths([str(tmp_path)]) if f.rule_id == "REF009"
        ]
        assert len(findings) == 1
        assert "'faults'" in findings[0].message
        assert findings[0].path.endswith("util/rng.py")
        assert findings[0].line == 1

    def test_single_file_lint_loses_cross_module_taint(self, tree_root):
        # Without the project pass the callee is invisible — the
        # optimistic default must stay silent, not guess.
        consumer = tree_root / "src" / "repro" / "net" / "consumer.py"
        source = consumer.read_text(encoding="utf-8")
        assert lint_source(source, "src/repro/net/consumer.py") == []
