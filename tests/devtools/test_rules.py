"""Positive and negative cases for every rule in the REFER pack.

Each rule gets at least one snippet it must flag and one it must not.
Snippets are linted as in-memory sources with a path chosen to land in
(or out of) the rule's scope.
"""

import pytest

from repro.devtools import lint_source

LIB = "src/repro/net/example.py"      # library file, sim-scoped dir
UTIL = "src/repro/util/example.py"    # library file, not sim-scoped
TEST = "tests/net/test_example.py"    # test file


def ids(findings):
    return [f.rule_id for f in findings]


def lint(source, path=LIB):
    return lint_source(source, path)


class TestRef001GlobalRandom:
    def test_flags_global_random_call(self):
        findings = lint("import random\nx = random.random()\n")
        assert ids(findings) == ["REF001"]
        assert findings[0].line == 2

    def test_flags_random_seed(self):
        assert ids(lint("import random\nrandom.seed(7)\n")) == ["REF001"]

    def test_flags_from_import_of_draw_function(self):
        assert ids(lint("from random import randint\n")) == ["REF001"]

    def test_allows_random_random_instances(self):
        source = (
            "import random\n"
            "def f(rng: random.Random) -> float:\n"
            "    return rng.random()\n"
        )
        assert lint(source) == []

    def test_construction_is_ref009_territory_not_ref001(self):
        # Constructing a generator is legal for REF001 (no global state)
        # but REF009 insists it happen inside RngStreams.
        findings = lint("import random\nr = random.Random(42)\n")
        assert ids(findings) == ["REF009"]

    def test_allows_from_random_import_random_class_in_rng_factory(self):
        source = "from random import Random\nr = Random(1)\n"
        assert lint(source, path="src/repro/util/rng.py") == []
        assert ids(lint(source)) == ["REF009"]

    def test_annotation_only_usage_is_legal(self):
        assert lint("import random\nrng: random.Random\n") == []

    def test_skips_test_files(self):
        assert lint("import random\nx = random.random()\n", path=TEST) == []


class TestRef002WallClock:
    def test_flags_time_time_in_sim_scope(self):
        findings = lint("import time\nnow = time.time()\n")
        assert ids(findings) == ["REF002"]

    def test_flags_datetime_now(self):
        source = "from datetime import datetime\nt = datetime.now()\n"
        assert ids(lint(source)) == ["REF002"]

    def test_flags_time_monotonic(self):
        assert ids(lint("import time\nt = time.monotonic()\n")) == ["REF002"]

    def test_allows_sim_clock(self):
        assert lint("def f(sim):\n    return sim.now\n") == []

    def test_allows_wall_clock_outside_sim_dirs(self):
        # experiments/ and util/ may timestamp reports with real time.
        assert lint("import time\nt = time.time()\n", path=UTIL) == []

    def test_skips_test_files(self):
        assert lint("import time\nt = time.time()\n", path=TEST) == []


class TestRef003SilentExcept:
    def test_flags_except_exception_pass(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        findings = lint(source)
        assert ids(findings) == ["REF003"]
        assert findings[0].line == 3

    def test_flags_bare_except_continue(self):
        source = (
            "for x in xs:\n"
            "    try:\n"
            "        f(x)\n"
            "    except:\n"
            "        continue\n"
        )
        assert ids(lint(source)) == ["REF003"]

    def test_flags_tuple_containing_exception(self):
        source = "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
        assert ids(lint(source)) == ["REF003"]

    def test_allows_narrow_except_pass(self):
        source = "try:\n    f()\nexcept KeyError:\n    pass\n"
        assert lint(source) == []

    def test_allows_broad_except_with_real_body(self):
        source = "try:\n    f()\nexcept Exception:\n    log()\n    raise\n"
        assert lint(source) == []

    def test_applies_to_test_files_too(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert ids(lint(source, path=TEST)) == ["REF003"]


class TestRef004FloatEquality:
    def test_flags_eq_against_float_literal(self):
        assert ids(lint("ok = remaining == 0.0\n")) == ["REF004"]

    def test_flags_noteq_and_reversed_operands(self):
        assert ids(lint("ok = 1.0 != quality\n")) == ["REF004"]

    def test_one_finding_per_comparison(self):
        assert ids(lint("ok = 0.0 == x == 1.0\n")) == ["REF004"]

    def test_allows_ordering_comparisons(self):
        assert lint("ok = remaining <= 0.0 or quality >= 1.0\n") == []

    def test_allows_integer_equality(self):
        assert lint("ok = count == 0\n") == []

    def test_allows_float_variable_equality(self):
        # Literal-free equality (e.g. snapshot comparisons) is out of
        # scope for REF004.
        assert lint("ok = a == b\n") == []

    def test_skips_test_files(self):
        assert lint("assert stat.mean == 0.0\n", path=TEST) == []


class TestRef005MutableDefault:
    def test_flags_list_literal_default(self):
        assert ids(lint("def f(acc=[]):\n    return acc\n")) == ["REF005"]

    def test_flags_dict_call_default(self):
        assert ids(lint("def f(cfg=dict()):\n    return cfg\n")) == ["REF005"]

    def test_flags_kwonly_set_default(self):
        source = "def f(*, seen={1}):\n    return seen\n"
        assert ids(lint(source)) == ["REF005"]

    def test_flags_lambda_default(self):
        assert ids(lint("g = lambda xs=[]: xs\n")) == ["REF005"]

    def test_allows_none_default(self):
        source = (
            "def f(acc=None):\n"
            "    if acc is None:\n"
            "        acc = []\n"
            "    return acc\n"
        )
        assert lint(source) == []

    def test_allows_immutable_defaults(self):
        assert lint("def f(a=0, b=(), c='x', d=frozenset()):\n    pass\n") == []

    def test_applies_to_test_files_too(self):
        assert ids(lint("def f(acc=[]):\n    pass\n", path=TEST)) == ["REF005"]


class TestRef006Exports:
    def test_flags_missing_export(self):
        source = "__all__ = ['ghost']\n"
        findings = lint(source)
        assert ids(findings) == ["REF006"]
        assert "ghost" in findings[0].message

    def test_allows_pep562_lazy_exports(self):
        source = (
            "__all__ = ['Lazy']\n"
            "def __getattr__(name):\n"
            "    '''Resolve lazy exports.'''\n"
            "    raise AttributeError(name)\n"
        )
        assert lint(source) == []

    def test_lazy_module_still_flags_undocumented_defs(self):
        source = (
            "__all__ = ['f', 'Lazy']\n"
            "def __getattr__(name):\n"
            "    '''Resolve lazy exports.'''\n"
            "    raise AttributeError(name)\n"
            "def f():\n"
            "    return 1\n"
        )
        findings = lint(source)
        assert ids(findings) == ["REF006"]
        assert "docstring" in findings[0].message

    def test_flags_undocumented_exported_function(self):
        source = (
            "__all__ = ['f']\n"
            "def f():\n"
            "    return 1\n"
        )
        findings = lint(source)
        assert ids(findings) == ["REF006"]
        assert "docstring" in findings[0].message

    def test_allows_documented_defs_and_imports(self):
        source = (
            "from os.path import join\n"
            "import sys\n"
            "__all__ = ['join', 'sys', 'VERSION', 'f', 'C']\n"
            "VERSION = '1.0'\n"
            "def f():\n"
            "    '''Documented.'''\n"
            "class C:\n"
            "    '''Documented.'''\n"
        )
        assert lint(source) == []

    def test_allows_aliased_import_export(self):
        source = "import os.path as p\n__all__ = ['p']\n"
        assert lint(source) == []

    def test_module_without_all_is_ignored(self):
        assert lint("def undocumented():\n    pass\n") == []

    def test_dynamic_all_is_ignored(self):
        # A computed __all__ cannot be checked statically; stay silent.
        assert lint("__all__ = sorted(globals())\n") == []


class TestRef007PrintInProtocolCode:
    def test_flags_print_in_protocol_module(self):
        findings = lint("print('delivered')\n")
        assert ids(findings) == ["REF007"]
        assert findings[0].line == 1

    def test_flags_print_in_every_protocol_directory(self):
        for directory in (
            "sim", "net", "core", "wsan", "chaos", "recovery",
            "kautz", "dht", "baselines", "telemetry",
        ):
            path = f"src/repro/{directory}/example.py"
            assert ids(lint("print(1)\n", path=path)) == ["REF007"]

    def test_flags_print_in_runtime_tracer(self):
        path = "src/repro/devtools/cover.py"
        assert ids(lint("print(1)\n", path=path)) == ["REF007"]

    def test_allows_print_outside_protocol_dirs(self):
        # The experiments/figures/report CLIs render to stdout by design.
        assert lint("print('table')\n", path="src/repro/experiments/figures.py") == []
        assert lint("print('x')\n", path=UTIL) == []

    def test_allows_print_in_tests(self):
        assert lint("print('debug')\n", path=TEST) == []

    def test_allows_shadowed_print_method(self):
        # Only the builtin name is flagged, not attribute calls.
        assert lint("logger.print('x')\n") == []


class TestScopeClassification:
    @pytest.mark.parametrize(
        "path",
        ["tests/net/x.py", "src/repro/net/test_thing.py", "conftest.py"],
    )
    def test_test_paths_skip_library_rules(self, path):
        assert lint_source("x = 1.0 == y\n", path) == []

    def test_windows_separators_are_normalised(self):
        findings = lint_source("x = y == 0.0\n", "src\\repro\\net\\m.py")
        assert ids(findings) == ["REF004"]
        assert findings[0].path == "src/repro/net/m.py"
