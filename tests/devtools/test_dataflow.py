"""Unit tests for the per-function taint engine (no rules involved)."""

import ast

from repro.devtools import dataflow
from repro.devtools.dataflow import (
    CLEAN,
    IDENTITY,
    RNG,
    SEQUENCE,
    UNORDERED,
    WALLCLOCK,
    FunctionSummary,
    analyse_module,
)


def flow_of(source, path="src/repro/net/example.py", summaries=None):
    return analyse_module(ast.parse(source), path, summaries)


def summary(flow, qualname):
    return flow.local_summaries()[qualname]


def kinds(flow):
    return [obs.kind for obs in flow.observations()]


class TestTaintTransfer:
    def test_set_literal_is_unordered(self):
        flow = flow_of("def f(xs):\n    return {x for x in xs}\n")
        assert summary(flow, "repro.net.example.f").returns & UNORDERED

    def test_sorted_sanitises(self):
        flow = flow_of(
            "def f(xs):\n"
            "    s = set(xs)\n"
            "    return sorted(s)\n"
        )
        returns = summary(flow, "repro.net.example.f").returns
        assert not returns & (UNORDERED | SEQUENCE)

    def test_list_of_set_is_hash_ordered_sequence(self):
        flow = flow_of(
            "def f(xs):\n"
            "    s = set(xs)\n"
            "    return list(s)\n"
        )
        returns = summary(flow, "repro.net.example.f").returns
        assert returns & UNORDERED and returns & SEQUENCE

    def test_indexing_drops_collection_taints(self):
        flow = flow_of(
            "def f(xs):\n"
            "    seq = list(set(xs))\n"
            "    return seq[0]\n"
        )
        assert summary(flow, "repro.net.example.f").returns == CLEAN

    def test_wall_clock_provenance_recorded(self):
        flow = flow_of(
            "import time\n"
            "def f():\n"
            "    t = time.monotonic()\n"
            "    return t\n"
        )
        s = summary(flow, "repro.net.example.f")
        assert s.returns & WALLCLOCK
        assert s.wall_source == "time.monotonic"

    def test_identity_from_id_call(self):
        flow = flow_of("def f(x):\n    return id(x)\n")
        assert summary(flow, "repro.net.example.f").returns & IDENTITY

    def test_rng_param_is_seeded(self):
        flow = flow_of(
            "def f(rng, xs):\n"
            "    for x in set(xs):\n"
            "        rng.random()\n"
        )
        assert dataflow.UNORDERED_DRAW in kinds(flow)

    def test_branch_join_unions_taint(self):
        flow = flow_of(
            "def f(xs, flag):\n"
            "    if flag:\n"
            "        v = set(xs)\n"
            "    else:\n"
            "        v = []\n"
            "    return list(v)\n"
        )
        assert summary(flow, "repro.net.example.f").returns & UNORDERED

    def test_loop_carried_taint_needs_second_pass(self):
        # b only becomes tainted from a on the second execution of the
        # loop body.
        flow = flow_of(
            "def f(xs):\n"
            "    a = []\n"
            "    b = []\n"
            "    for _ in range(2):\n"
            "        b = a\n"
            "        a = set(xs)\n"
            "    return list(b)\n"
        )
        assert summary(flow, "repro.net.example.f").returns & UNORDERED

    def test_self_attributes_tracked_within_method(self):
        flow = flow_of(
            "class C:\n"
            "    def m(self, xs):\n"
            "        self.pending = set(xs)\n"
            "        return list(self.pending)\n"
        )
        returns = summary(flow, "repro.net.example.C.m").returns
        assert returns & UNORDERED


class TestObservations:
    def test_schedule_in_unordered_loop(self):
        flow = flow_of(
            "def f(sim, xs):\n"
            "    for x in set(xs):\n"
            "        sim.schedule(1.0, x)\n"
        )
        assert kinds(flow) == [dataflow.UNORDERED_SCHEDULE]

    def test_loop_body_run_twice_observes_once(self):
        flow = flow_of(
            "def f(sim, xs):\n"
            "    for x in set(xs):\n"
            "        sim.schedule(1.0, x)\n"
            "        sim.call_later(2.0, x)\n"
        )
        assert sorted(kinds(flow)) == [
            dataflow.UNORDERED_SCHEDULE,
            dataflow.UNORDERED_SCHEDULE,
        ]

    def test_sum_over_set_observed(self):
        flow = flow_of("def f(xs):\n    return sum(set(xs))\n")
        assert kinds(flow) == [dataflow.UNORDERED_REDUCTION]

    def test_fsum_is_sanctioned(self):
        flow = flow_of(
            "import math\n"
            "def f(xs):\n"
            "    return math.fsum(set(xs))\n"
        )
        assert kinds(flow) == []

    def test_append_in_unordered_loop_taints_list(self):
        flow = flow_of(
            "def f(xs):\n"
            "    out = []\n"
            "    for x in set(xs):\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        assert dataflow.UNORDERED_EMIT in kinds(flow)

    def test_observations_sorted_by_position(self):
        flow = flow_of(
            "def f(sim, xs):\n"
            "    for x in set(xs):\n"
            "        sim.schedule(1.0, x)\n"
            "    return sum(set(xs))\n"
        )
        lines = [obs.node.lineno for obs in flow.observations()]
        assert lines == sorted(lines)


class TestInterproceduralSummaries:
    def test_external_summary_consulted(self):
        summaries = {
            "repro.util.clock.read": FunctionSummary(
                returns=WALLCLOCK, wall_source="time.time"
            )
        }
        flow = flow_of(
            "from repro.util.clock import read\n"
            "def f():\n"
            "    return read()\n",
            summaries=summaries,
        )
        assert kinds(flow) == [dataflow.WALLCLOCK_HELPER]
        s = summary(flow, "repro.net.example.f")
        assert s.returns & WALLCLOCK
        assert s.wall_source == "time.time"

    def test_local_helper_summary_available_in_same_pass(self):
        flow = flow_of(
            "def helper(xs):\n"
            "    return set(xs)\n"
            "def caller(sim, xs):\n"
            "    for x in helper(xs):\n"
            "        sim.schedule(1.0, x)\n"
        )
        assert dataflow.UNORDERED_SCHEDULE in kinds(flow)

    def test_unresolved_call_defaults_to_clean(self):
        flow = flow_of(
            "def f(sim, mystery):\n"
            "    for x in mystery():\n"
            "        sim.schedule(1.0, x)\n"
        )
        assert kinds(flow) == []

    def test_rng_ish_summary_recognised(self):
        summaries = {
            "repro.util.rng.grab": FunctionSummary(returns=RNG)
        }
        flow = flow_of(
            "from repro.util.rng import grab\n"
            "def f(xs):\n"
            "    r = grab()\n"
            "    for x in set(xs):\n"
            "        r.choice(x)\n",
            summaries=summaries,
        )
        assert dataflow.UNORDERED_DRAW in kinds(flow)
