"""Detector fidelity under bursty (Gilbert-Elliott) link loss.

The satellite experiment behind ``adaptive_timeout``: on links that
fade in bursts, a detector whose timeout tracks the observed RTT keeps
its false-positive rate bounded, while a fixed timeout pinned below
the real round-trip time condemns live nodes constantly.  Both runs
are fully derandomized (fixed seeds, static nodes), so the asserted
bounds are exact regression pins, not statistical hopes.
"""

import random

from repro.chaos.models import GilbertElliottLinkFault
from repro.net.mobility import StaticMobility
from repro.net.network import WirelessNetwork
from repro.net.node import Node, NodeRole
from repro.recovery import FailureDetector, RecoveryConfig
from repro.sim.core import Simulator
from repro.util.geometry import Point

#: The pinned fidelity bar, in false positives *per probe sent* (all
#: nodes stay alive, so every condemnation is false): the adaptive
#: detector stays below it, the fixed strawman lands far above it.
FP_PER_PROBE_BOUND = 0.05


def fp_per_probe(stats):
    return stats.false_positives / stats.probes_sent


def run_detector(adaptive: bool, sim_time: float = 60.0):
    """One detector instance over bursty links; all nodes stay alive."""
    sim = Simulator()
    net = WirelessNetwork(sim, random.Random(3))
    for i in range(4):
        net.add_node(
            Node(
                i,
                NodeRole.SENSOR,
                StaticMobility(Point(i * 50.0, 0.0)),
                300.0,
            )
        )
    burst = GilbertElliottLinkFault(
        net, random.Random(21), mean_good=6.0, mean_bad=0.5
    )
    burst.start()
    config = RecoveryConfig(
        detector_period=0.5,
        suspicion_threshold=3,
        probe_bytes=128,
        adaptive_timeout=adaptive,
        # Pinned below the ~3 ms probe RTT of 128-byte frames: the
        # strawman judges every healthy reply late.
        fixed_timeout=0.002,
    )
    pairs = [(0, 1), (1, 2), (2, 3), (3, 0)]
    detector = FailureDetector(
        net,
        random.Random(7),
        config,
        pairs=lambda: pairs,
        audit_usable=lambda n: net.node(n).usable,
    )
    detector.start()
    sim.run_until(sim_time)
    burst.stop()
    return detector.stats


class TestDetectionFidelity:
    def test_adaptive_timeout_keeps_false_positives_bounded(self):
        stats = run_detector(adaptive=True)
        assert stats.replies > 0
        # The only condemnations left are GE bursts that genuinely
        # outlast the suspicion window — rare by construction.
        assert fp_per_probe(stats) <= FP_PER_PROBE_BOUND

    def test_fixed_timeout_strawman_exceeds_the_bound(self):
        stats = run_detector(adaptive=False)
        assert stats.condemnations > 0
        assert fp_per_probe(stats) > FP_PER_PROBE_BOUND
        # The replies still arrive — just later than the strawman's
        # timeout — which is exactly the failure mode adaptive fixes:
        # the strawman flaps condemn/absolve on healthy-but-slow links.
        assert stats.late_replies > 0
        assert stats.absolutions > 0

    def test_fidelity_gap_is_material(self):
        adaptive = run_detector(adaptive=True)
        strawman = run_detector(adaptive=False)
        assert strawman.condemnations > 10 * max(adaptive.condemnations, 1)
        assert fp_per_probe(strawman) > fp_per_probe(adaptive) + 0.5

    def test_runs_are_derandomized(self):
        a = run_detector(adaptive=True)
        b = run_detector(adaptive=True)
        assert (a.condemnations, a.misses, a.replies) == (
            b.condemnations,
            b.misses,
            b.replies,
        )
