"""Unit tests for the per-hop ARQ layer."""

import random

import pytest

from repro.net.mac import MacConfig
from repro.net.mobility import StaticMobility
from repro.net.network import WirelessNetwork
from repro.net.node import Node, NodeRole
from repro.net.packet import Packet, PacketKind
from repro.recovery import ArqLink
from repro.sim.core import Simulator
from repro.util.geometry import Point


def build_pair(range_m=200.0, spacing=60.0, seed=3, **mac_kwargs):
    sim = Simulator()
    net = WirelessNetwork(
        sim, random.Random(seed), mac_config=MacConfig(**mac_kwargs)
    )
    for i in range(2):
        net.add_node(
            Node(
                i,
                NodeRole.SENSOR,
                StaticMobility(Point(i * spacing, 0.0)),
                range_m,
            )
        )
    return sim, net


def packet(src=0, dst=1, now=0.0):
    return Packet(
        kind=PacketKind.DATA,
        size_bytes=200,
        source=src,
        destination=dst,
        created_at=now,
    )


class TestArqLink:
    def test_clean_hop_delivers_once(self):
        sim, net = build_pair(base_loss=0.0, contention_loss=0.0)
        link = ArqLink(net, random.Random(5), ack_loss=0.0)
        delivered, failed = [], []
        link.send(
            0, 1, packet(),
            on_delivered=delivered.append,
            on_failed=lambda p, at: failed.append(p),
        )
        sim.run_until(1.0)
        assert len(delivered) == 1
        assert not failed
        assert link.stats.attempts == 1
        assert link.stats.retransmissions == 0

    def test_handler_invoked_exactly_once(self):
        sim, net = build_pair(base_loss=0.0, contention_loss=0.0)
        link = ArqLink(net, random.Random(5), ack_loss=0.0)
        received = []
        net.set_receive_handler(1, received.append)
        link.send(0, 1, packet())
        sim.run_until(1.0)
        assert len(received) == 1

    def test_retransmission_recovers_lossy_hop(self):
        # MAC with no link-layer retries and heavy loss: only the ARQ
        # stands between a lost frame and a hop failure.
        sim, net = build_pair(
            base_loss=0.5, contention_loss=0.0, retry_limit=0
        )
        recovered = []
        link = ArqLink(
            net, random.Random(5), budget=4, ack_loss=0.0,
            on_recovered=lambda: recovered.append(1),
        )
        delivered = []
        for i in range(40):
            link.send(0, 1, packet(now=i * 0.1), on_delivered=delivered.append)
        sim.run_until(60.0)
        assert link.stats.retransmissions > 0
        assert link.stats.recovered_by_retransmit > 0
        assert len(recovered) == link.stats.recovered_by_retransmit
        # The ARQ lifts per-hop reliability well above the raw 50%.
        assert len(delivered) >= 35

    def test_lost_acks_never_cause_duplicate_delivery(self):
        # Every ACK is lost: the sender burns its whole budget on
        # retransmissions of a frame the receiver already forwarded.
        sim, net = build_pair(base_loss=0.0, contention_loss=0.0)
        link = ArqLink(net, random.Random(5), budget=2, ack_loss=1.0)
        delivered, failed = [], []
        received = []
        net.set_receive_handler(1, received.append)
        link.send(
            0, 1, packet(),
            on_delivered=delivered.append,
            on_failed=lambda p, at: failed.append(p),
        )
        sim.run_until(5.0)
        assert len(delivered) == 1
        assert len(received) == 1
        assert not failed          # the data DID arrive; no hop failure
        assert link.stats.duplicates_suppressed == 2
        assert link.stats.exhausted == 1
        assert link.stats.ack_losses == 3

    def test_budget_exhaustion_reports_failure_once(self):
        # Destination out of range: every attempt fails at the network
        # layer, and after the budget the hop failure propagates.
        sim, net = build_pair(range_m=40.0, spacing=60.0)
        link = ArqLink(net, random.Random(5), budget=2, ack_loss=0.0)
        delivered, failed = [], []
        link.send(
            0, 1, packet(),
            on_delivered=delivered.append,
            on_failed=lambda p, at: failed.append(p),
        )
        sim.run_until(5.0)
        assert not delivered
        assert len(failed) == 1
        assert link.stats.attempts == 3        # original + 2 retransmits
        assert link.stats.exhausted == 1

    def test_ack_energy_charged_to_ack_ledger(self):
        sim, net = build_pair(base_loss=0.0, contention_loss=0.0)
        link = ArqLink(net, random.Random(5), ack_loss=0.0)
        link.send(0, 1, packet())
        sim.run_until(1.0)
        assert net.energy.total_by_kind("ack") > 0.0

    def test_dup_cache_is_bounded(self):
        sim, net = build_pair(base_loss=0.0, contention_loss=0.0)
        link = ArqLink(net, random.Random(5), ack_loss=0.0, cache_size=4)
        for i in range(20):
            link.send(0, 1, packet(now=i * 0.05))
        sim.run_until(5.0)
        assert len(link._seen[1]) <= 4

    def test_backoff_grows_with_attempt(self):
        sim, net = build_pair()
        link = ArqLink(
            net, random.Random(5), backoff=0.01, backoff_factor=2.0,
            jitter=0.0,
        )
        assert link._backoff_delay(0) == pytest.approx(0.01)
        assert link._backoff_delay(2) == pytest.approx(0.04)
