"""End-to-end tests of the recovery orchestrator inside full runs."""

import pytest

import repro.net.node as node_module
from repro.chaos.spec import FaultSpec
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.recovery import RecoveryConfig

BASE = ScenarioConfig(
    seed=7,
    sensor_count=60,
    area_side=260.0,
    sim_time=30.0,
    warmup=6.0,
    rate_pps=6.0,
)

ACTUATOR_KILL = FaultSpec(
    kind="actuator", count=1, period=20.0, duration=10.0, rounds=1,
    start=10.0,
)

SENSOR_ROTATION = FaultSpec(kind="rotation", count=3, period=10.0, start=10.0)


class TestActuatorTakeover:
    def test_kill_one_actuator_heals_the_can_tier(self):
        config = BASE.with_(
            fault_spec=(ACTUATOR_KILL,), recovery=RecoveryConfig()
        )
        run = run_scenario("REFER", config)
        report = run.recovery
        assert report is not None
        # The detector condemned the dead actuator from message
        # evidence alone, the healer handed its zones over, and the
        # actuator rejoined after the outage window.
        assert report.condemnations >= 1
        assert report.can_takeovers >= 1
        assert report.can_rejoins >= 1
        assert report.missed_faults == 0
        assert report.mean_time_to_detect_s > 0.0
        # Traffic survives the outage.
        assert run.delivery_ratio > 0.8

    def test_detection_is_not_instant_but_is_prompt(self):
        config = BASE.with_(
            fault_spec=(ACTUATOR_KILL,), recovery=RecoveryConfig()
        )
        run = run_scenario("REFER", config)
        report = run.recovery
        # Message-grounded detection needs threshold consecutive
        # missed heartbeats: the latency must exceed one period and
        # stay inside a handful of them.
        period = RecoveryConfig().detector_period
        threshold = RecoveryConfig().suspicion_threshold
        assert report.mean_time_to_detect_s >= period
        assert report.mean_time_to_detect_s <= 3.0 * period * threshold

    def test_resilience_summary_carries_detection_latency(self):
        config = BASE.with_(
            fault_spec=(ACTUATOR_KILL,), recovery=RecoveryConfig()
        )
        run = run_scenario("REFER", config)
        assert run.resilience is not None
        assert run.resilience.detection_latency_s > 0.0
        assert run.resilience.repair_latency_s > 0.0


class TestSensorRepair:
    def test_condemned_sensors_get_replaced(self):
        config = BASE.with_(
            fault_spec=(SENSOR_ROTATION,), recovery=RecoveryConfig()
        )
        run = run_scenario("REFER", config)
        report = run.recovery
        assert report.condemnations >= 1
        # Maintenance consumed the verdicts (repairs landed) — the
        # repair clock closed at least one fault window.
        assert report.mean_time_to_repair_s > 0.0


class TestReportShape:
    def test_recovery_none_without_config(self):
        run = run_scenario("REFER", BASE)
        assert run.recovery is None

    def test_baselines_ignore_recovery_config(self):
        config = BASE.with_(recovery=RecoveryConfig())
        run = run_scenario("DaTree", config)
        assert run.recovery is None

    def test_arq_only_config_reports_arq_counters(self):
        config = BASE.with_(
            recovery=RecoveryConfig(detector=False, heal_can=False)
        )
        run = run_scenario("REFER", config)
        report = run.recovery
        assert report is not None
        assert report.arq_attempts > 0
        assert report.probes_sent == 0         # detector never started
        assert report.can_takeovers == 0


class TestNoGroundTruthReads:
    """Maintenance must not read ``node.usable`` in detector mode."""

    @staticmethod
    def _recording_usable(readers):
        import sys

        original = node_module.Node.usable.fget

        def fget(self):
            readers.append(sys._getframe(1).f_code.co_filename)
            return original(self)

        return property(fget)

    def _run(self, monkeypatch, recovery):
        readers = []
        monkeypatch.setattr(
            node_module.Node, "usable", self._recording_usable(readers)
        )
        config = BASE.with_(
            fault_spec=(SENSOR_ROTATION,), recovery=recovery
        )
        run_scenario("REFER", config)
        return readers

    def test_detector_mode_maintenance_never_reads_usable(self, monkeypatch):
        readers = self._run(monkeypatch, RecoveryConfig())
        maintenance_reads = [
            f for f in readers if f.replace("\\", "/").endswith(
                "repro/core/maintenance.py"
            )
        ]
        assert maintenance_reads == []

    def test_omniscient_mode_does_read_usable(self, monkeypatch):
        # Sanity for the probe above: without the recovery stack the
        # seed's omniscient maintenance reads ground truth every round.
        readers = self._run(monkeypatch, None)
        maintenance_reads = [
            f for f in readers if f.replace("\\", "/").endswith(
                "repro/core/maintenance.py"
            )
        ]
        assert maintenance_reads
