"""Unit tests for the message-grounded failure detector."""

import random

from repro.net.mac import MacConfig
from repro.net.mobility import StaticMobility
from repro.net.network import WirelessNetwork
from repro.net.node import Node, NodeRole
from repro.recovery import FailureDetector, RecoveryConfig
from repro.sim.core import Simulator
from repro.util.geometry import Point


def build_net(count=4, spacing=60.0, seed=3, **mac_kwargs):
    """A line of sensors, each within range of every other."""
    sim = Simulator()
    net = WirelessNetwork(
        sim, random.Random(seed), mac_config=MacConfig(**mac_kwargs)
    )
    for i in range(count):
        net.add_node(
            Node(
                i,
                NodeRole.SENSOR,
                StaticMobility(Point(i * spacing, 0.0)),
                400.0,
            )
        )
    return sim, net


def build_detector(net, pairs, seed=7, **overrides):
    config = RecoveryConfig(**overrides)
    return FailureDetector(
        net,
        random.Random(seed),
        config,
        pairs=lambda: pairs,
        audit_usable=lambda n: net.node(n).usable,
    )


class TestHeartbeat:
    def test_live_target_never_condemned(self):
        sim, net = build_net()
        det = build_detector(net, [(0, 1)], detector_period=0.5)
        det.start()
        sim.run_until(20.0)
        assert det.stats.condemnations == 0
        assert not det.condemned(1)
        assert det.stats.replies > 0
        assert det.was_watched(1)

    def test_dead_target_condemned_within_threshold_rounds(self):
        sim, net = build_net()
        det = build_detector(
            net, [(0, 1)], detector_period=0.5, suspicion_threshold=3
        )
        det.start()
        sim.run_until(5.0)
        net.fail_node(1)
        sim.run_until(5.0 + 0.5 * 8)
        assert det.condemned(1)
        assert det.stats.condemnations == 1
        # Ground truth agrees: the condemned node really was down.
        assert det.stats.false_positives == 0

    def test_recovered_target_absolved(self):
        sim, net = build_net()
        det = build_detector(net, [(0, 1)], detector_period=0.5)
        det.start()
        sim.run_until(2.0)
        net.fail_node(1)
        sim.run_until(10.0)
        assert det.condemned(1)
        net.recover_node(1)
        sim.run_until(16.0)
        assert not det.condemned(1)
        assert det.stats.absolutions == 1

    def test_verdict_listener_sees_both_kinds(self):
        sim, net = build_net()
        det = build_detector(net, [(0, 1)], detector_period=0.5)
        events = []
        det.add_listener(events.append)
        det.start()
        sim.run_until(2.0)
        net.fail_node(1)
        sim.run_until(10.0)
        net.recover_node(1)
        sim.run_until(16.0)
        kinds = [e.kind for e in events]
        assert kinds == ["condemn", "absolve"]
        assert all(e.node_id == 1 for e in events)

    def test_adaptive_timeout_learns_the_rtt(self):
        sim, net = build_net()
        det = build_detector(net, [(0, 1)], detector_period=0.5)
        initial = det.timeout_of(1)
        det.start()
        sim.run_until(10.0)
        learned = det.timeout_of(1)
        # The probe RTT on an idle link is a few ms; the adaptive
        # timeout collapses from the conservative prior to the floor.
        assert learned < initial
        assert learned == RecoveryConfig().min_timeout

    def test_fixed_timeout_mode_never_adapts(self):
        sim, net = build_net()
        det = build_detector(
            net, [(0, 1)], detector_period=0.5,
            adaptive_timeout=False, fixed_timeout=0.2,
        )
        det.start()
        sim.run_until(10.0)
        assert det.timeout_of(1) == 0.2

    def test_battery_is_self_reported(self):
        sim, net = build_net()
        node = net.node(1)
        node.battery_joules = 100.0
        det = build_detector(net, [(0, 1)], detector_period=0.5)
        det.start()
        sim.run_until(3.0)
        first = det.reported_battery(1)
        node.consumed_joules = 60.0
        sim.run_until(6.0)
        assert det.reported_battery(1) < first
        assert abs(det.reported_battery(1) - node.battery_fraction) < 0.05

    def test_unwatched_node_defaults(self):
        sim, net = build_net()
        det = build_detector(net, [(0, 1)])
        assert not det.condemned(99)
        assert det.reported_battery(99) == 1.0
        assert not det.was_watched(99)

    def test_forget_clears_suspicion_history(self):
        sim, net = build_net()
        det = build_detector(net, [(0, 1)], detector_period=0.5)
        det.start()
        sim.run_until(2.0)
        net.fail_node(1)
        sim.run_until(10.0)
        assert det.condemned(1)
        det.forget(1)
        assert not det.condemned(1)

    def test_dead_monitor_records_nothing(self):
        sim, net = build_net()
        det = build_detector(net, [(0, 1)], detector_period=0.5)
        det.start()
        sim.run_until(2.0)
        misses_before = det.stats.misses
        # Kill monitor AND target: the monitor's pending deadlines must
        # not produce miss records (its timers died with it).
        net.fail_node(0)
        net.fail_node(1)
        sim.run_until(12.0)
        assert det.stats.misses == misses_before
        assert not det.condemned(1)

    def test_probe_energy_charged_to_probe_ledger(self):
        sim, net = build_net()
        det = build_detector(net, [(0, 1)], detector_period=0.5)
        det.start()
        sim.run_until(5.0)
        assert net.energy.total_by_kind("probe") > 0.0

    def test_same_seed_same_verdict_schedule(self):
        timelines = []
        for _ in range(2):
            sim, net = build_net()
            det = build_detector(net, [(0, 1)], detector_period=0.5)
            det.start()
            sim.run_until(2.0)
            net.fail_node(1)
            sim.run_until(12.0)
            timelines.append([(e.time, e.node_id, e.kind) for e in det.verdicts])
        assert timelines[0] == timelines[1]
