"""Unit tests for CAN zone takeover and key re-homing."""

import random

from repro.recovery import CanHealer
from repro.wsan.deployment import plan_deployment


def build_plan(seed=4):
    return plan_deployment(40, 400.0, random.Random(seed))


class TestCanHealer:
    def test_initial_overlay_homes_every_cid(self):
        healer = CanHealer(build_plan())
        plan = build_plan()
        assert len(healer.overlay) == plan.actuator_count
        for spec in plan.cells:
            assert healer.home_of(spec.cid) in range(plan.actuator_count)

    def test_condemn_hands_zones_to_heir(self):
        plan = build_plan()
        healer = CanHealer(plan)
        victim = healer.home_of(plan.cells[0].cid)
        healer.condemn(victim)
        assert victim in healer.suspected
        assert victim not in healer.overlay
        assert healer.stats.takeovers == 1
        # Every CID key re-homed off the condemned actuator.
        for spec in plan.cells:
            assert healer.home_of(spec.cid) != victim

    def test_absolve_rejoins_and_rehomes(self):
        plan = build_plan()
        healer = CanHealer(plan)
        victim = healer.home_of(plan.cells[0].cid)
        healer.condemn(victim)
        healer.absolve(victim)
        assert victim not in healer.suspected
        assert victim in healer.overlay
        assert healer.stats.rejoins == 1

    def test_condemn_is_idempotent(self):
        healer = CanHealer(build_plan())
        healer.condemn(0)
        healer.condemn(0)
        assert healer.stats.takeovers == 1

    def test_condemning_everyone_keeps_last_homes(self):
        plan = build_plan()
        healer = CanHealer(plan)
        for a in range(plan.actuator_count):
            healer.condemn(a)
        # The overlay refuses to empty itself (last member keeps its
        # zones) and keys always resolve to *some* actuator.
        assert len(healer.overlay) == 1
        for spec in plan.cells:
            assert healer.home_of(spec.cid) is not None

    def test_unknown_actuator_ignored(self):
        healer = CanHealer(build_plan())
        healer.condemn(999)
        healer.absolve(999)
        assert healer.stats.takeovers == 0
        assert not healer.suspected

    def test_next_hop_routes_toward_key(self):
        plan = build_plan()
        healer = CanHealer(plan)
        for spec in plan.cells:
            owner = healer.home_of(spec.cid)
            for actuator in range(plan.actuator_count):
                nxt = healer.next_hop(actuator, spec.cid)
                if actuator == owner:
                    assert nxt is None       # already home
                elif nxt is not None:
                    assert nxt != actuator
                    assert nxt in healer.overlay

    def test_next_hop_none_for_condemned_source(self):
        plan = build_plan()
        healer = CanHealer(plan)
        healer.condemn(0)
        assert healer.next_hop(0, plan.cells[0].cid) is None

    def test_rehome_counter_tracks_changes(self):
        plan = build_plan()
        healer = CanHealer(plan)
        victim = healer.home_of(plan.cells[0].cid)
        before = healer.stats.rehomed_keys
        healer.condemn(victim)
        assert healer.stats.rehomed_keys > before
