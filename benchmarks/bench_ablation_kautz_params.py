"""Ablation: REFER with K(d, 3) cells of varying degree (future work).

The paper's conclusion lists "the Kautz graph K(d, k) with various d
and k values" as future work; the library's generic cell-embedding
fill-in makes d > 2 runnable.  Larger d packs more sensors per cell
(more members to maintain, shorter intra-cell paths); the bench
regenerates the comparison.
"""

from repro.experiments.runner import run_scenario_cached

from _common import bench_base_config, emit


def test_kautz_degree_sweep(benchmark):
    base = bench_base_config()

    def sweep():
        results = {}
        for degree in (2, 3):
            config = base.with_(kautz_degree=degree, seed=1)
            results[degree] = run_scenario_cached("REFER", config)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nREFER with K(d, 3) cells:")
    header = (
        f"{'d':>3s} {'cell size':>10s} {'throughput':>12s} {'delay ms':>9s}"
        f" {'comm J':>9s} {'constr J':>9s}"
    )
    print(header)
    for degree, r in results.items():
        cell_size = (degree + 1) * degree ** 2
        print(
            f"{degree:3d} {cell_size:10d} {r.throughput_bps / 1000:10.1f} kb"
            f" {1000 * r.mean_delay_s:9.2f} {r.comm_energy_j:9.0f}"
            f" {r.construction_energy_j:9.0f}"
        )

    r2, r3 = results[2], results[3]
    # Both configurations must function as real-time systems.
    assert r2.delivery_ratio > 0.95
    assert r3.delivery_ratio > 0.9
    # Bigger cells cost more maintenance/communication energy —
    # the degree/overhead tradeoff of Section III-A.
    assert r3.comm_energy_j > r2.comm_energy_j
