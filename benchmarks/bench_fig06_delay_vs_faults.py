"""Figure 6: average transmission delay versus faulty nodes (IV-B).

Paper shape: REFER's fault-tolerant routing keeps its delay lowest and
nearly flat; DaTree/D-DEAR grow faster (path re-establishment +
retransmission); Kautz-overlay's multi-hop overlay segments give it by
far the highest delay.
"""

from repro.experiments.figures import fig6_delay_vs_faults

from _common import bench_base_config, bench_seeds, emit, series_values

FAULTS = (2, 6, 10)


def test_fig6(benchmark):
    data = benchmark.pedantic(
        lambda: fig6_delay_vs_faults(
            base=bench_base_config(), fault_counts=FAULTS, seeds=bench_seeds()
        ),
        rounds=1,
        iterations=1,
    )
    emit(data, "fig06_delay_vs_faults.txt")

    refer = series_values(data, "REFER")
    overlay = series_values(data, "Kautz-overlay")
    # REFER has the least delay at every fault level.
    for name in ("DaTree", "D-DEAR", "Kautz-overlay"):
        values = series_values(data, name)
        for i in range(len(FAULTS)):
            assert refer[i] < values[i], (name, i)
    # The overlay's consecutive multi-hop paths dominate everyone.
    for name in ("REFER", "DaTree", "D-DEAR"):
        values = series_values(data, name)
        assert overlay[-1] > 2 * values[-1]
    # REFER stays nearly flat (local detours, no re-establishment).
    assert max(refer) < 2.0 * min(refer)
