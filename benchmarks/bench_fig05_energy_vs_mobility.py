"""Figure 5: communication energy versus node mobility (Section IV-A).

Paper shape: all systems consume more with mobility; REFER consumes
significantly less than the rest with only a slight increase; DaTree's
broadcast repairs make it grow rapidly; D-DEAR sits between.
"""

from repro.experiments.figures import fig5_energy_vs_mobility

from _common import bench_base_config, bench_seeds, emit, series_values

SPEEDS = (0.5, 2.0, 3.5, 5.0)


def test_fig5(benchmark):
    data = benchmark.pedantic(
        lambda: fig5_energy_vs_mobility(
            base=bench_base_config(), speeds=SPEEDS, seeds=bench_seeds()
        ),
        rounds=1,
        iterations=1,
    )
    emit(data, "fig05_energy_vs_mobility.txt")

    refer = series_values(data, "REFER")
    datree = series_values(data, "DaTree")
    ddear = series_values(data, "D-DEAR")
    overlay = series_values(data, "Kautz-overlay")
    # REFER is the cheapest at every mobility level, and nearly flat.
    for i in range(len(SPEEDS)):
        assert refer[i] < datree[i]
        assert refer[i] < ddear[i]
        assert refer[i] < overlay[i]
    assert max(refer) < 1.5 * min(refer)
    # DaTree grows rapidly with mobility and overtakes D-DEAR widely.
    assert datree[-1] > 3 * datree[0]
    assert datree[-1] > 2 * ddear[-1]
    # D-DEAR grows moderately.
    assert ddear[-1] > ddear[0]
