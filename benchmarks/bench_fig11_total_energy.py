"""Figure 11: total energy = communication + construction (IV-D).

Paper shape: for the deployed systems, topology construction is a
small share of lifetime energy (the paper reports ~0.1% for REFER at
1 Mbps over 1000 s).  The bench regenerates the total-energy series
and additionally reports REFER's construction share both as measured
at bench scale and extrapolated to the paper's traffic scale.
"""

from repro.experiments.figures import (
    fig9_energy_vs_size,
    fig10_construction_energy_vs_size,
    fig11_total_energy_vs_size,
)

from _common import bench_base_config, bench_seeds, emit, series_values

SIZES = (100, 200, 300, 400)

# Paper scale vs bench scale: 1 Mbps ~ 125 pkt/s per source over
# 1000 s, vs REFER_BENCH_RATE pkt/s over REFER_BENCH_SIM_TIME seconds.
PAPER_RATE_PPS = 125.0
PAPER_SIM_TIME = 1000.0


def test_fig11(benchmark):
    base = bench_base_config()
    data = benchmark.pedantic(
        lambda: fig11_total_energy_vs_size(
            base=base, sizes=SIZES, seeds=bench_seeds()
        ),
        rounds=1,
        iterations=1,
    )
    emit(data, "fig11_total_energy.txt")

    comm = fig9_energy_vs_size(base=base, sizes=SIZES, seeds=bench_seeds())
    constr = fig10_construction_energy_vs_size(
        base=base, sizes=SIZES, seeds=1
    )
    scale = (PAPER_RATE_PPS * PAPER_SIM_TIME) / (
        base.rate_pps * base.sim_time
    )
    print("\nREFER construction share of total energy:")
    for i, size in enumerate(SIZES):
        c = constr.series["REFER"][i].mean
        m = comm.series["REFER"][i].mean
        measured = c / (c + m)
        projected = c / (c + m * scale)
        print(
            f"  n={size}: measured {100 * measured:5.1f}%   "
            f"projected at paper traffic scale {100 * projected:5.2f}%"
        )
        # At the paper's traffic scale, construction is negligible.
        assert projected < 0.05

    total = data
    overlay = series_values(total, "Kautz-overlay")
    refer = series_values(total, "REFER")
    for i in range(len(SIZES)):
        assert overlay[i] > refer[i]
