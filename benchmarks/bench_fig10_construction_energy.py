"""Figure 10: topology-construction energy versus size (Section IV-D).

Paper shape, at every size:
``DaTree < D-DEAR < REFER << Kautz-overlay``.
DaTree builds its trees with one joint actuator broadcast; D-DEAR adds
per-sensor beacons; REFER adds the actuator exchange plus per-cell
path queries; Kautz-overlay floods once per overlay member.
"""

from repro.experiments.figures import fig10_construction_energy_vs_size

from _common import bench_base_config, emit, series_values

SIZES = (100, 200, 300, 400)


def test_fig10(benchmark):
    # Construction is deterministic given the deployment: 1 seed suffices.
    data = benchmark.pedantic(
        lambda: fig10_construction_energy_vs_size(
            base=bench_base_config(), sizes=SIZES, seeds=1
        ),
        rounds=1,
        iterations=1,
    )
    emit(data, "fig10_construction_energy.txt")

    datree = series_values(data, "DaTree")
    ddear = series_values(data, "D-DEAR")
    refer = series_values(data, "REFER")
    overlay = series_values(data, "Kautz-overlay")
    for i in range(len(SIZES)):
        assert datree[i] < ddear[i] < refer[i] < overlay[i], i
        # The overlay's construction is in a different league.
        assert overlay[i] > 5 * refer[i]
