"""Overload sweep: graceful degradation with the QoS stack on vs off.

Drives the bursty heavy-tailed workload at 1x / 10x / 100x offered
load through REFER twice — once plain, once with the full QoS stack
(priority MAC, admission control, hop backpressure) — and reports the
alarm-class delivery ratio per point (saved under
``benchmarks/results/`` with a ``BENCH_qos_overload.json`` twin).

The headline claims under test:

* at 10x load the QoS stack keeps **alarm** delivery at >= 2x the
  unshaped network's (in exchange for shedding bulk traffic — that is
  the graceful part of the degradation);
* alarm deadline misses stay <= 5% at 10x with QoS on;
* the shaped overload run is byte-identical across repeats.

Effort knobs: ``REFER_BENCH_SEEDS`` (default 2) seeds per point and
``REFER_BENCH_QOS_SIM_TIME`` (default 8 s measured; the 100x point
routes ~50k packets unshaped, so this bench keeps its own knob rather
than inheriting the 30 s figure default).
"""

import os

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import FigureData, SeriesPoint
from repro.experiments.runner import run_scenario
from repro.qos import BurstyConfig, QosConfig
from repro.util.stats import confidence_interval_95

from _common import emit

LOAD_MULTIPLIERS = (1.0, 10.0, 100.0)
SERIES_ON = "REFER (QoS on)"
SERIES_OFF = "REFER (QoS off)"


def _base_config(seed: int) -> ScenarioConfig:
    sim_time = float(os.environ.get("REFER_BENCH_QOS_SIM_TIME", "8"))
    return ScenarioConfig(
        seed=seed,
        sensor_count=40,
        area_side=220.0,
        sim_time=sim_time,
        warmup=2.0,
    )


def _overload_config(seed: int, mult: float, qos_on: bool) -> ScenarioConfig:
    return _base_config(seed).with_(
        qos=QosConfig() if qos_on else None,
        bursty=BurstyConfig(
            sources=10, peak_rate_pps=12.0, load_multiplier=mult
        ),
    )


def _class_stat(result, traffic_class):
    for stat in result.class_stats:
        if stat.traffic_class == traffic_class:
            return stat
    raise AssertionError(f"no {traffic_class} stats in {result.class_stats}")


def _fingerprint(result):
    return repr(
        (
            result.generated,
            result.delivered_total,
            result.dropped,
            result.throughput_bps,
            result.mean_delay_s,
            result.comm_energy_j,
            result.class_stats,
        )
    )


def test_qos_overload(benchmark):
    seeds = int(os.environ.get("REFER_BENCH_SEEDS", "2"))

    def sweep():
        results = {}
        for qos_on, series in ((True, SERIES_ON), (False, SERIES_OFF)):
            for mult in LOAD_MULTIPLIERS:
                results[(series, mult)] = [
                    run_scenario(
                        "REFER", _overload_config(seed, mult, qos_on)
                    )
                    for seed in range(1, seeds + 1)
                ]
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    data = FigureData(
        figure="qos-overload",
        title="Alarm-class delivery under offered overload",
        xlabel="offered load multiplier",
        ylabel="alarm delivery ratio (within deadline)",
    )
    for series in (SERIES_ON, SERIES_OFF):
        points = []
        for mult in LOAD_MULTIPLIERS:
            ratios = [
                _class_stat(r, "alarm").delivery_ratio
                for r in results[(series, mult)]
            ]
            mean, ci = confidence_interval_95(ratios)
            points.append(
                SeriesPoint(x=mult, mean=mean, ci95=ci, samples=len(ratios))
            )
        data.series[series] = points
    emit(data, "qos_overload.txt")

    # Graceful degradation: at 10x the shaped network protects alarms
    # at >= 2x the unshaped delivery ratio, and misses few deadlines.
    shaped = data.value_at(SERIES_ON, 10.0)
    unshaped = data.value_at(SERIES_OFF, 10.0)
    assert shaped >= 2.0 * unshaped, (
        f"QoS on {shaped:.3f} vs off {unshaped:.3f} at 10x"
    )
    assert shaped >= 0.95
    for result in results[(SERIES_ON, 10.0)]:
        assert _class_stat(result, "alarm").deadline_miss_rate <= 0.05
    # At nominal (1x) load the stack is nearly free: alarms deliver
    # fully either way.
    assert data.value_at(SERIES_ON, 1.0) >= 0.95
    assert data.value_at(SERIES_OFF, 1.0) >= 0.95
    # The degradation is *graceful*: at 100x the unshaped network
    # collapses outright (alarms arrive late or not at all) while the
    # shaped one still lands a usable fraction of its alarms in time.
    shaped_extreme = data.value_at(SERIES_ON, 100.0)
    unshaped_extreme = data.value_at(SERIES_OFF, 100.0)
    assert shaped_extreme >= 10.0 * max(unshaped_extreme, 0.01)
    # The price is paid by the elastic class, not the urgent one.
    bulk_10x = _class_stat(results[(SERIES_ON, 10.0)][0], "bulk")
    alarm_10x = _class_stat(results[(SERIES_ON, 10.0)][0], "alarm")
    assert alarm_10x.delivery_ratio > bulk_10x.delivery_ratio

    # Determinism: the shaped overload run repeats byte-identically.
    first = results[(SERIES_ON, 10.0)][0]
    repeat = run_scenario("REFER", _overload_config(1, 10.0, True))
    assert _fingerprint(first) == _fingerprint(repeat)
