"""Ablation: the degree/diameter tradeoff behind Proposition 3.1.

Kautz graphs reach more nodes per diameter than de Bruijn graphs and
hypercubes at equal degree — the reason Section III-A picks Kautz
cells.  The bench prints the comparison table for WSAN-relevant sizes
and verifies the claim, plus the Moore-bound density trend that
justifies small-diameter cells.
"""

from repro.kautz.analysis import (
    degree_diameter_table,
    kautz_diameter_for,
    moore_bound_ratio,
)
from repro.kautz.graph import KautzGraph


def test_degree_diameter_tradeoff(benchmark):
    table = benchmark.pedantic(
        lambda: {
            n: degree_diameter_table(n, degrees=[2, 3, 4])
            for n in (100, 200, 400, 1000)
        },
        rounds=1,
        iterations=1,
    )
    print("\nDiameter needed to span n nodes (smaller is better):")
    print(f"{'n':>6s} {'d':>3s} {'kautz':>6s} {'debruijn':>9s} {'hypercube':>10s}")
    for n, rows in table.items():
        for d, row in rows.items():
            print(
                f"{n:6d} {d:3d} {row['kautz']:6d} {row['debruijn']:9d}"
                f" {row['hypercube']:10d}"
            )
            assert row["kautz"] <= row["debruijn"]

    # Hypercube comparison: at its own degree the hypercube needs a far
    # larger degree than d to achieve its diameter; at equal (small)
    # degree Kautz wins on diameter for large n.
    assert kautz_diameter_for(1000, 4) < 10


def test_moore_bound_density(benchmark):
    ratios = benchmark.pedantic(
        lambda: {k: moore_bound_ratio(3, k) for k in (1, 2, 3, 4, 5)},
        rounds=1,
        iterations=1,
    )
    print("\nKautz density vs the Moore bound, d=3:")
    for k, ratio in ratios.items():
        print(f"  k={k}: {100 * ratio:5.1f}%")
    # Density increases as the diameter shrinks (Section III-B's case
    # for small cells).
    values = [ratios[k] for k in sorted(ratios)]
    assert values == sorted(values, reverse=True)


def test_diameter_measured_equals_k(benchmark):
    graphs = [(2, 3), (3, 3), (4, 2)]

    def measure():
        return [KautzGraph(d, k).measured_diameter() for d, k in graphs]

    diameters = benchmark(measure)
    assert diameters == [k for _, k in graphs]
