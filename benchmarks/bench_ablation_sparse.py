"""Ablation: REFER in a sparse WSAN (the paper's future-work question).

The embedding assumes dense deployments (Proposition 3.2).  This bench
thins the sensor population from dense (200) down to sparse (40) and
measures what actually degrades first: the embedding starts using its
geometric fallback placements, entry hops to cell members get longer,
and delivery under mobility erodes.
"""

from repro.experiments.runner import run_scenario_cached

from _common import bench_base_config, bench_seeds

DENSITIES = (40, 80, 200)


def test_sparse_wsan(benchmark):
    base = bench_base_config()

    def sweep():
        results = {}
        for sensors in DENSITIES:
            per_seed = [
                run_scenario_cached(
                    "REFER",
                    base.with_(sensor_count=sensors, seed=seed),
                )
                for seed in range(1, bench_seeds() + 1)
            ]
            results[sensors] = per_seed
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nREFER under thinning deployments:")
    print(f"{'sensors':>8s} {'delivery':>9s} {'delay ms':>9s} {'comm J':>9s}")
    ratios = {}
    for sensors, runs in results.items():
        ratio = sum(r.delivery_ratio for r in runs) / len(runs)
        delay = sum(r.mean_delay_s for r in runs) / len(runs)
        energy = sum(r.comm_energy_j for r in runs) / len(runs)
        ratios[sensors] = ratio
        print(
            f"{sensors:8d} {100 * ratio:8.1f}% {1000 * delay:9.2f}"
            f" {energy:9.0f}"
        )
    # Dense deployments deliver nearly everything; sparse ones degrade
    # but the system keeps functioning (no collapse).
    assert ratios[200] > 0.97
    assert ratios[40] > 0.5
    assert ratios[40] <= ratios[200]
