"""Engine scaling gate: the fast engine must earn its keep, exactly.

The engine overhaul (calendar queue + interned Kautz IDs + pooled
packets, :class:`~repro.sim.engine.EngineConfig`) promises two things:

* **speed** — draining the event set out of the calendar queue is
  O(1) per event against the heap's O(log n), so event *dispatch*
  throughput must be at least ``REFER_BENCH_ENGINE_GATE`` (default 3x)
  the heap's at n = 6400 queued events and beyond.  (Push throughput
  is deliberately *not* gated: heap push on random keys is ~O(1)
  expected, so the calendar only wins on the pop side — that is where
  the simulator spends its time.)
* **nothing else** — a fast-engine run must be byte-identical to the
  reference engine, and must not cost more memory: peak traced
  allocation of a pooled run is gated at 1.10x the reference run's.

Knobs:

* ``REFER_BENCH_ENGINE_SIZES``   queue sizes for the throughput sweep
  (default ``1600,6400,10000``; the >=3x gate applies at sizes >= 6400)
* ``REFER_BENCH_ENGINE_SENSORS`` sensor count for the scenario-level
  byte-equality + peak-alloc comparison (default 1600)
* ``REFER_BENCH_ENGINE_REPEATS`` best-of repeats (default 5)
* ``REFER_BENCH_ENGINE_GATE``    dispatch-throughput ratio floor (3.0)
* ``REFER_BENCH_FULL=1``         unlock the 10k-sensor figure-8 point
"""

import gc
import os
import json
import random
import time
import tracemalloc

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.sim.calendar import CalendarQueue
from repro.sim.engine import EngineConfig
from repro.sim.events import EventQueue

from _common import RESULTS_DIR

SIZES = tuple(
    int(s)
    for s in os.environ.get(
        "REFER_BENCH_ENGINE_SIZES", "1600,6400,10000"
    ).split(",")
)
SENSORS = int(os.environ.get("REFER_BENCH_ENGINE_SENSORS", "1600"))
REPEATS = int(os.environ.get("REFER_BENCH_ENGINE_REPEATS", "5"))
GATE = float(os.environ.get("REFER_BENCH_ENGINE_GATE", "3.0"))
#: The >=GATE dispatch gate only applies from this queue size up; below
#: it the constant factors dominate and the ratio is reported, not gated.
GATE_FLOOR = 6400

#: Peak traced allocation of the fast engine vs the reference engine.
ALLOC_BUDGET = 1.10

METRIC_FIELDS = (
    "throughput_bps",
    "mean_delay_s",
    "comm_energy_j",
    "construction_energy_j",
    "generated",
    "delivered_qos",
    "delivered_total",
    "dropped",
    "flood_comm_energy_j",
)

BACKENDS = {"heap": EventQueue, "calendar": CalendarQueue}


def _noop():
    pass


def _times(size):
    """One fixed random workload per size, shared by both backends."""
    rng = random.Random(size)
    # Spread over [0, size/100): ~100 events per unit of simulated time,
    # the density a mid-size REFER run actually presents to the queue.
    return [rng.random() * (size / 100.0) for _ in range(size)]


def _pop_trace(queue_cls, times):
    """The (time, seq) pop order of one backend — untimed parity probe."""
    queue = queue_cls()
    for t in times:
        queue.push(t, _noop)
    trace = []
    while True:
        event = queue.pop()
        if event is None:
            break
        trace.append((event.time, event.seq))
    return trace


def _timed_push_drain(queue_cls, times):
    """(push seconds, drain seconds) for one bare push-all/pop-all pass.

    The drain loop does nothing but pop: any per-event work added here
    is a constant charged to both backends, which only compresses the
    O(log n) vs O(1) ratio this bench exists to measure.
    """
    gc.collect()
    queue = queue_cls()
    start = time.perf_counter()
    for t in times:
        queue.push(t, _noop)
    push_s = time.perf_counter() - start
    pop = queue.pop
    start = time.perf_counter()
    while pop() is not None:
        pass
    drain_s = time.perf_counter() - start
    return push_s, drain_s


def _timed_hold(queue_cls, times, ops):
    """Hold model: steady-state pop-one push-one at full population."""
    gc.collect()
    queue = queue_cls()
    for t in times:
        queue.push(t, _noop)
    rng = random.Random(1)
    start = time.perf_counter()
    for _ in range(ops):
        event = queue.pop()
        queue.push(event.time + rng.random(), _noop)
    hold_s = time.perf_counter() - start
    return hold_s


def test_dispatch_throughput_gate():
    rows = []
    gated = []
    for size in SIZES:
        times = _times(size)
        # The fast path must be indistinguishable through the queue API:
        # identical (time, seq) pop order, event for event.
        assert _pop_trace(CalendarQueue, times) == _pop_trace(
            EventQueue, times
        ), f"pop order diverged at n={size}"
        best = {name: [None, None] for name in BACKENDS}
        for _ in range(REPEATS):
            for name, cls in BACKENDS.items():
                push_s, drain_s = _timed_push_drain(cls, times)
                slot = best[name]
                slot[0] = push_s if slot[0] is None else min(slot[0], push_s)
                slot[1] = drain_s if slot[1] is None else min(slot[1], drain_s)
        hold = {
            name: _timed_hold(cls, times, 4 * size)
            for name, cls in BACKENDS.items()
        }
        ratio = best["heap"][1] / best["calendar"][1]
        rows.append(
            {
                "size": size,
                "heap_push_s": best["heap"][0],
                "heap_drain_s": best["heap"][1],
                "calendar_push_s": best["calendar"][0],
                "calendar_drain_s": best["calendar"][1],
                "dispatch_ratio": ratio,
                "hold_ratio": hold["heap"] / hold["calendar"],
                "calendar_drain_eps": size / best["calendar"][1],
                "heap_drain_eps": size / best["heap"][1],
            }
        )
        if size >= GATE_FLOOR:
            gated.append((size, ratio))

    lines = [
        "engine scaling: event dispatch, heap vs calendar "
        "(best of %d)" % REPEATS,
        "",
        "  %8s  %12s  %12s  %9s  %9s"
        % ("n", "heap ev/s", "calendar ev/s", "dispatch", "hold"),
    ]
    for row in rows:
        lines.append(
            "  %8d  %12.0f  %12.0f  %8.2fx  %8.2fx"
            % (
                row["size"],
                row["heap_drain_eps"],
                row["calendar_drain_eps"],
                row["dispatch_ratio"],
                row["hold_ratio"],
            )
        )
    table = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_scaling.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    (RESULTS_DIR / "BENCH_engine_scaling.json").write_text(
        json.dumps(
            {"gate": GATE, "gate_floor": GATE_FLOOR, "rows": rows},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print("\n" + table)
    for size, ratio in gated:
        assert ratio >= GATE, (
            f"calendar dispatch only {ratio:.2f}x the heap at n={size} "
            f"(gate {GATE:.1f}x)"
        )


def _scenario(sensors):
    # Density-preserving growth (area ~ sqrt(n), anchored at the
    # n=2000 determinism golden's 500 m box).  Densifying the paper's
    # fixed 500 m area instead drowns the run in MAC contention
    # (~1200 neighbours per node at n=10k), which measures the radio
    # model, not the engine.
    return ScenarioConfig(
        seed=3,
        sensor_count=sensors,
        area_side=500.0 * (sensors / 2000.0) ** 0.5,
        sim_time=6.0,
        warmup=1.0,
        rate_pps=2.0,
    )


def _traced_run(config):
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    result = run_scenario("REFER", config)
    wall = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, wall, peak


def test_fast_engine_identical_and_no_alloc_regression():
    """One real run per engine: same numbers, no memory regression.

    Wall times here are *not* gated (tracemalloc inflates both runs
    alike); the dispatch gate above is the performance contract.
    """
    base = _scenario(SENSORS)
    reference, ref_wall, ref_peak = _traced_run(
        base.with_(engine=EngineConfig.reference())
    )
    fast, fast_wall, fast_peak = _traced_run(
        base.with_(engine=EngineConfig.fast())
    )

    for field in METRIC_FIELDS:
        assert repr(getattr(reference, field)) == repr(
            getattr(fast, field)
        ), f"fast engine perturbed {field}"
    assert fast.generated > 0 and fast.delivered_total > 0

    table = "\n".join(
        [
            "engine scaling: REFER run, reference vs fast engine "
            "(%d sensors, traced)" % SENSORS,
            "",
            "  reference  %8.3f s   peak alloc %10.1f MiB"
            % (ref_wall, ref_peak / 2 ** 20),
            "  fast       %8.3f s   peak alloc %10.1f MiB"
            % (fast_wall, fast_peak / 2 ** 20),
            "  metrics    byte-identical across %d fields"
            % len(METRIC_FIELDS),
        ]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_scenario.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    print("\n" + table)
    assert fast_peak <= ref_peak * ALLOC_BUDGET, (
        f"fast engine peak alloc {fast_peak / 2 ** 20:.1f} MiB exceeds "
        f"{ALLOC_BUDGET:.2f}x the reference "
        f"({ref_peak / 2 ** 20:.1f} MiB)"
    )


@pytest.mark.skipif(
    os.environ.get("REFER_BENCH_FULL") != "1",
    reason="10k-sensor point: set REFER_BENCH_FULL=1",
)
def test_figure8_point_at_10k_sensors():
    """The headline claim: a 10k-node figure-8 point on a laptop."""
    config = _scenario(10000)
    gc.collect()
    start = time.perf_counter()
    result = run_scenario(
        "REFER", config.with_(engine=EngineConfig.fast())
    )
    wall = time.perf_counter() - start
    delivered_fraction = (
        result.delivered_total / result.generated if result.generated else 0.0
    )
    table = "\n".join(
        [
            "engine scaling: 10k-sensor REFER point (fast engine)",
            "",
            "  wall time        %10.1f s" % wall,
            "  generated        %10d" % result.generated,
            "  delivered        %10d  (%.2f of generated)"
            % (result.delivered_total, delivered_fraction),
            "  qos ratio        %10.3f" % result.delivery_ratio,
            "  mean delay       %10.4f s" % result.mean_delay_s,
        ]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_10k_point.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    print("\n" + table)
    assert result.generated > 0
    # Absolute delivery at this size is bounded by the paper's fixed
    # 5-actuator deployment stretched over the grown field, not by the
    # engine; completing the run with most packets delivered is the
    # claim this point makes.
    assert delivered_fraction > 0.5
