"""Ablation: spatial hash grid vs brute-force neighbour queries.

Every hop, probe and maintenance tick goes through
``WirelessMedium.neighbors``; the brute-force scan makes each cache
miss O(n), so a full bucket of queries costs O(n^2) — the
neighbour-discovery cost that caps the Figs 8-9 size-scaling runs.
This bench measures both paths on identical deployments at constant
node density (the paper's ~1 node / 1225 m^2), asserts the results are
*identical*, and records the speedup table under
``benchmarks/results/ablation_neighbor_index.txt``.

Reading the table: brute-force per-query cost grows linearly with n
(per-bucket cost quadratically); the grid's stays flat because a query
only examines the cells overlapping its disk — so the per-bucket cost
is O(n) and the speedup grows with n.  ``REFER_BENCH_INDEX_SIZES``
overrides the swept sizes.
"""

import os
import time

from repro.net.medium import WirelessMedium
from repro.net.mobility import StaticMobility
from repro.net.node import Node, NodeRole
from repro.util.geometry import Point
from repro.util.rng import RngStreams

from _common import RESULTS_DIR

#: Constant-density scaling: area side grows with sqrt(n), keeping the
#: paper's 200-nodes-in-500m-square density at every size.
SPACING = 35.0
RANGE_M = 100.0
QUERIES = 200
REPEATS = 3


def sizes():
    raw = os.environ.get("REFER_BENCH_INDEX_SIZES", "100,400,1600,6400")
    return [int(x) for x in raw.split(",") if x]


def build_medium(n, use_spatial_index):
    rng = RngStreams(17).stream("bench.index")
    area = SPACING * (n ** 0.5)
    medium = WirelessMedium(use_spatial_index=use_spatial_index)
    for node_id in range(n):
        pos = Point(rng.uniform(0, area), rng.uniform(0, area))
        medium.add_node(
            Node(node_id, NodeRole.SENSOR, StaticMobility(pos), RANGE_M)
        )
    return medium


def sample_queries(n):
    rng = RngStreams(23).stream("bench.queries")
    count = min(n, QUERIES)
    return rng.sample(range(n), count)


def timed_queries(medium, node_ids):
    """Best-of-REPEATS time for one cache-missing sweep over node_ids.

    Each repeat queries in a fresh 0.25 s bucket so every query is a
    cache miss (the per-bucket result cache would otherwise hide the
    compute being measured); the bucket-roll snapshot refresh is free
    here because the deployment is static.
    """
    medium.neighbors(node_ids[0], 0.0)   # build snapshot + index once
    best = None
    for repeat in range(1, REPEATS + 1):
        now = repeat * 0.25
        start = time.perf_counter()
        for node_id in node_ids:
            medium.neighbors(node_id, now)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def run_ablation():
    rows = []
    for n in sizes():
        grid_medium = build_medium(n, True)
        brute_medium = build_medium(n, False)
        node_ids = sample_queries(n)
        # Identical query results first — the fast path must be exact.
        for node_id in node_ids:
            assert grid_medium.neighbors(node_id, 0.0) == \
                brute_medium.neighbors(node_id, 0.0)
        grid_s = timed_queries(grid_medium, node_ids)
        brute_s = timed_queries(brute_medium, node_ids)
        stats = grid_medium.index_stats()
        queries = stats["queries"]
        rows.append(
            {
                "n": n,
                "queries": len(node_ids),
                "grid_us": 1e6 * grid_s / len(node_ids),
                "brute_us": 1e6 * brute_s / len(node_ids),
                "speedup": brute_s / grid_s,
                "cand_per_query": stats["candidates"] / queries,
                "occupied_cells": stats["occupied_cells"],
                "max_per_cell": stats["max_per_cell"],
                "rebuckets": stats["rebuckets"],
            }
        )
    return rows


def format_table(rows):
    lines = [
        "ablation: spatial-index neighbor queries "
        "(constant density, range 100 m, best of %d)" % REPEATS,
        "",
        "     n  queries  grid us/q  brute us/q  speedup  cand/q"
        "  cells  max/cell",
    ]
    for r in rows:
        lines.append(
            "%6d  %7d  %9.1f  %10.1f  %6.1fx  %6.1f  %5d  %8d"
            % (
                r["n"], r["queries"], r["grid_us"], r["brute_us"],
                r["speedup"], r["cand_per_query"], r["occupied_cells"],
                r["max_per_cell"],
            )
        )
    lines.append("")
    lines.append(
        "brute us/q grows ~linearly with n (O(n^2) per bucket); grid"
    )
    lines.append(
        "us/q stays flat at constant density (O(n) per bucket)."
    )
    return "\n".join(lines)


def test_neighbor_index_ablation():
    rows = run_ablation()
    table = format_table(rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_neighbor_index.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    print("\n" + table)

    by_n = {r["n"]: r for r in rows}
    if 1600 in by_n:
        assert by_n[1600]["speedup"] >= 5.0
    # Sub-quadratic scaling: per-query grid cost must not track n.
    # (Linear per-query growth — the brute profile — would be 16x from
    # 400 to 6400; the grid stays within a small constant factor.)
    if 400 in by_n and 6400 in by_n:
        assert by_n[6400]["grid_us"] < 4.0 * by_n[400]["grid_us"]
        assert by_n[6400]["speedup"] > by_n[400]["speedup"]
    # The index does strictly less distance work than the scan.
    for r in rows:
        assert r["cand_per_query"] < r["n"]
