"""referlint wall-time gate: the full-tree analysis stays affordable.

The interprocedural passes (scope build, per-function dataflow, the
summary fixpoint) multiplied the work the linter does per file; this
bench keeps that honest.  It lints ``src`` and ``tests`` with the
complete rule pack — the exact workload of the CI lint step and of the
package-quality test — ``REPEATS`` times, takes the best pass (best-of
discards scheduler noise), and gates it at
``REFER_BENCH_LINT_BUDGET`` seconds of wall time (default 20 s, an
order of magnitude above today's cost so only a complexity regression,
not machine jitter, can trip it).

Alongside the human table, a machine-readable
``results/BENCH_lint_walltime.json`` twin records the timings, the
corpus size and the convergence round count, so a slowdown can be
diffed across PRs.
"""

import gc
import json
import os
import pathlib
import time

from repro.devtools.callgraph import Project
from repro.devtools.driver import iter_python_files, lint_paths
from repro.devtools.rules import all_rules

from _common import RESULTS_DIR

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
LINT_PATHS = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]

REPEATS = int(os.environ.get("REFER_BENCH_LINT_REPEATS", "3"))
BUDGET = float(os.environ.get("REFER_BENCH_LINT_BUDGET", "20.0"))


def timed_lint():
    gc.collect()
    start = time.perf_counter()
    findings = lint_paths(LINT_PATHS, all_rules())
    return time.perf_counter() - start, findings


def test_full_tree_lint_walltime_gate():
    file_count = sum(1 for _ in iter_python_files(LINT_PATHS))
    assert file_count > 50, "corpus unexpectedly small — wrong paths?"

    timings = []
    findings = []
    for _ in range(REPEATS):
        elapsed, findings = timed_lint()
        timings.append(elapsed)
    best = min(timings)

    # Convergence observability: how many fixpoint rounds the project
    # pass needed on the real tree (MAX_ROUNDS means a cycle hit the
    # bound — worth noticing before it becomes a cost problem).
    loaded = []
    import ast

    for path in iter_python_files([str(REPO_ROOT / "src")]):
        with open(path, "r", encoding="utf-8") as handle:
            loaded.append((path, ast.parse(handle.read())))
    project = Project.build(loaded)

    table = "\n".join(
        [
            "referlint full-tree wall time"
            " (%d files, best of %d)" % (file_count, REPEATS),
            "",
            "  best       %8.3f s   (budget %.1f s)" % (best, BUDGET),
            "  worst      %8.3f s" % max(timings),
            "  findings   %8d" % len(findings),
            "  summaries  %8d" % len(project.summaries),
            "  rounds     %8d" % project.rounds,
        ]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "lint_walltime.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    (RESULTS_DIR / "BENCH_lint_walltime.json").write_text(
        json.dumps(
            {
                "budget_s": BUDGET,
                "best_s": best,
                "worst_s": max(timings),
                "repeats": REPEATS,
                "files": file_count,
                "findings": len(findings),
                "summaries": len(project.summaries),
                "fixpoint_rounds": project.rounds,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print("\n" + table)

    assert best <= BUDGET, (
        f"full-tree lint took {best:.3f}s, budget {BUDGET:.1f}s"
    )
