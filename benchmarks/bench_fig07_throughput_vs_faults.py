"""Figure 7: throughput versus faulty nodes (Section IV-B).

Paper shape: every system loses throughput as faults grow; REFER's
decline is slight; Kautz-overlay delivers the least in absolute terms
(its long paths cross the 0.6 s QoS bound first).
"""

from repro.experiments.figures import fig7_throughput_vs_faults

from _common import bench_base_config, bench_seeds, emit, series_values

FAULTS = (2, 6, 10)


def test_fig7(benchmark):
    data = benchmark.pedantic(
        lambda: fig7_throughput_vs_faults(
            base=bench_base_config(), fault_counts=FAULTS, seeds=bench_seeds()
        ),
        rounds=1,
        iterations=1,
    )
    emit(data, "fig07_throughput_vs_faults.txt")

    refer = series_values(data, "REFER")
    overlay = series_values(data, "Kautz-overlay")
    # Kautz-overlay produces the least throughput at every point.
    for name in ("REFER", "DaTree", "D-DEAR"):
        values = series_values(data, name)
        for i in range(len(FAULTS)):
            assert overlay[i] < values[i], (name, i)
    # REFER's decline across the fault range is small (< 10%).
    assert min(refer) > 0.9 * max(refer)
