"""Telemetry overhead gates: observation <= 5%, tracing <= 10% wall.

The telemetry design claims observation is cheap: the registry is
always on underneath (the stats views write through it either way), so
enabling telemetry only adds the flight recorder's per-hop appends and
the profiler's per-event dict bumps.  Deterministic tracing
(:mod:`repro.telemetry.tracing`) additionally buffers one event tuple
per dispatch/draw/lifecycle transition and folds them into the rolling
hash in batches, which must also stay cheap or nobody will leave
tracing on while hunting a divergence.

This bench runs the same REFER scenario with ``telemetry=None``,
``telemetry=TelemetryConfig()`` and telemetry+tracing, interleaved
within each of ``REPEATS`` rounds, and gates **paired per-round
ratios** (the minimum across rounds): paired ratios cancel the
machine-load drift that independent best-of-N times are exposed to,
while a real hot-path regression still inflates every round.

* enabled/disabled <= ``REFER_BENCH_TELEMETRY_BUDGET`` (default 1.05);
* traced/enabled <= ``REFER_BENCH_TRACE_BUDGET`` (default 1.10) — the
  cost of tracing itself, everything else equal.

The runs' *numbers* must also match exactly — the overhead gates are
meaningless if observation or tracing perturbs the simulation.
"""

import gc
import json
import os
import time

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.tracing import TracingConfig

from _common import RESULTS_DIR

REPEATS = int(os.environ.get("REFER_BENCH_TELEMETRY_REPEATS", "5"))
BUDGET = float(os.environ.get("REFER_BENCH_TELEMETRY_BUDGET", "1.05"))
TRACE_BUDGET = float(os.environ.get("REFER_BENCH_TRACE_BUDGET", "1.10"))

#: Metric fields that must be identical across all three variants.
METRIC_FIELDS = (
    "throughput_bps",
    "mean_delay_s",
    "comm_energy_j",
    "construction_energy_j",
    "generated",
    "delivered_qos",
    "delivered_total",
    "dropped",
    "flood_comm_energy_j",
)


def bench_config():
    sim_time = float(os.environ.get("REFER_BENCH_TELEMETRY_SIM_TIME", "20"))
    return ScenarioConfig(
        seed=11,
        sensor_count=100,
        sim_time=sim_time,
        warmup=max(2.0, sim_time / 10.0),
        rate_pps=12.0,
    )


def timed_run(config):
    # Start every timed pass from a collected heap: the previous run's
    # garbage otherwise triggers collections inside this run's window,
    # charged to whichever variant happens to run second.
    gc.collect()
    start = time.perf_counter()
    result = run_scenario("REFER", config)
    return time.perf_counter() - start, result


def test_telemetry_overhead_gate():
    base = bench_config()
    variants = {
        "disabled": base,
        "enabled": base.with_(telemetry=TelemetryConfig()),
        "traced": base.with_(
            telemetry=TelemetryConfig(tracing=TracingConfig())
        ),
    }
    # One untimed pass warms allocator arenas and import-time caches so
    # the first timed variant is not charged for them.
    timed_run(base)
    order = list(variants)
    rounds = []
    results = {}
    for i in range(REPEATS):
        times = {}
        # Rotate the within-round order so no variant always runs
        # first (coldest) or last (warmest).
        for name in order[i % len(order):] + order[: i % len(order)]:
            times[name], results[name] = timed_run(variants[name])
        rounds.append(times)

    for name in ("enabled", "traced"):
        for field in METRIC_FIELDS:
            assert repr(getattr(results["disabled"], field)) == repr(
                getattr(results[name], field)
            ), f"{name} telemetry perturbed {field}"
    assert results["disabled"].telemetry is None
    assert results["enabled"].telemetry is not None
    assert results["enabled"].telemetry.flight.journeys_started > 0
    trace = results["traced"].telemetry.trace
    assert trace is not None and trace.events_seen > 0

    best = {
        name: min(r[name] for r in rounds) for name in variants
    }
    ratio = min(r["enabled"] / r["disabled"] for r in rounds)
    trace_ratio = min(r["traced"] / r["enabled"] for r in rounds)
    table = "\n".join(
        [
            "telemetry overhead (REFER, %d sensors, %.0f s measured,"
            " %d interleaved rounds)"
            % (base.sensor_count, base.sim_time, REPEATS),
            "",
            "  disabled   %8.3f s" % best["disabled"],
            "  enabled    %8.3f s" % best["enabled"],
            "  traced     %8.3f s" % best["traced"],
            "  enabled/disabled %6.3f   (budget %.2f, paired best round)"
            % (ratio, BUDGET),
            "  traced/enabled   %6.3f   (budget %.2f, paired best round)"
            % (trace_ratio, TRACE_BUDGET),
            "  flight journeys   %d"
            % results["enabled"].telemetry.flight.journeys_started,
            "  flight events     %d"
            % results["enabled"].telemetry.flight.events_recorded,
            "  trace events      %d" % trace.events_seen,
            "  trace checkpoints %d" % len(trace.checkpoints),
        ]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "telemetry_overhead.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    (RESULTS_DIR / "BENCH_telemetry_overhead.json").write_text(
        json.dumps(
            {
                "bench": "telemetry_overhead",
                "sensors": base.sensor_count,
                "sim_time": base.sim_time,
                "repeats": REPEATS,
                "seconds": {name: best[name] for name in sorted(best)},
                "ratio": ratio,
                "trace_ratio": trace_ratio,
                "budget": BUDGET,
                "trace_budget": TRACE_BUDGET,
                "trace_events": trace.events_seen,
                "trace_fingerprint": trace.fingerprint(),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print("\n" + table)
    assert ratio <= BUDGET, (
        f"telemetry overhead {ratio:.3f} exceeds budget {BUDGET:.2f}"
    )
    assert trace_ratio <= TRACE_BUDGET, (
        f"tracing overhead {trace_ratio:.3f} exceeds budget "
        f"{TRACE_BUDGET:.2f}"
    )
