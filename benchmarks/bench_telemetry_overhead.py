"""Telemetry overhead gate: an enabled run must cost <= 5% wall time.

The telemetry design claims observation is cheap: the registry is
always on underneath (the stats views write through it either way), so
enabling telemetry only adds the flight recorder's per-hop appends and
the profiler's per-event dict bumps.  This bench runs the same REFER
scenario with ``telemetry=None`` and ``telemetry=TelemetryConfig()``,
takes the best of ``REPEATS`` interleaved passes of each (best-of
discards scheduler noise; interleaving discards warm-up bias), and
gates the ratio at ``REFER_BENCH_TELEMETRY_BUDGET`` (default 1.05).

The run's *numbers* must also match exactly — the overhead gate is
meaningless if the observed run diverges from the unobserved one.
"""

import gc
import os
import time

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.telemetry.config import TelemetryConfig

from _common import RESULTS_DIR

REPEATS = int(os.environ.get("REFER_BENCH_TELEMETRY_REPEATS", "3"))
BUDGET = float(os.environ.get("REFER_BENCH_TELEMETRY_BUDGET", "1.05"))

#: Metric fields that must be identical with telemetry on and off.
METRIC_FIELDS = (
    "throughput_bps",
    "mean_delay_s",
    "comm_energy_j",
    "construction_energy_j",
    "generated",
    "delivered_qos",
    "delivered_total",
    "dropped",
    "flood_comm_energy_j",
)


def bench_config():
    sim_time = float(os.environ.get("REFER_BENCH_TELEMETRY_SIM_TIME", "20"))
    return ScenarioConfig(
        seed=11,
        sensor_count=100,
        sim_time=sim_time,
        warmup=max(2.0, sim_time / 10.0),
        rate_pps=12.0,
    )


def timed_run(config):
    # Start every timed pass from a collected heap: the previous run's
    # garbage otherwise triggers collections inside this run's window,
    # charged to whichever variant happens to run second.
    gc.collect()
    start = time.perf_counter()
    result = run_scenario("REFER", config)
    return time.perf_counter() - start, result


def test_telemetry_overhead_gate():
    base = bench_config()
    enabled_cfg = base.with_(telemetry=TelemetryConfig())
    best_off = best_on = None
    result_off = result_on = None
    for _ in range(REPEATS):
        t_off, result_off = timed_run(base)
        t_on, result_on = timed_run(enabled_cfg)
        best_off = t_off if best_off is None else min(best_off, t_off)
        best_on = t_on if best_on is None else min(best_on, t_on)

    for field in METRIC_FIELDS:
        assert repr(getattr(result_off, field)) == repr(
            getattr(result_on, field)
        ), f"telemetry perturbed {field}"
    assert result_off.telemetry is None
    assert result_on.telemetry is not None
    assert result_on.telemetry.flight.journeys_started > 0

    ratio = best_on / best_off
    table = "\n".join(
        [
            "telemetry overhead (REFER, %d sensors, %.0f s measured,"
            " best of %d)" % (base.sensor_count, base.sim_time, REPEATS),
            "",
            "  disabled   %8.3f s" % best_off,
            "  enabled    %8.3f s" % best_on,
            "  ratio      %8.3f   (budget %.2f)" % (ratio, BUDGET),
            "  flight journeys   %d" % result_on.telemetry.flight.journeys_started,
            "  flight events     %d" % result_on.telemetry.flight.events_recorded,
        ]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "telemetry_overhead.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    print("\n" + table)
    assert ratio <= BUDGET, (
        f"telemetry overhead {ratio:.3f} exceeds budget {BUDGET:.2f}"
    )
