"""Figure 4: throughput versus node mobility (Section IV-A).

Paper shape: higher mobility causes a *slight* throughput decrease in
REFER, moderate decreases in DaTree and D-DEAR, and a *sharp* decrease
in Kautz-overlay.
"""

from repro.experiments.figures import fig4_throughput_vs_mobility

from _common import bench_base_config, bench_seeds, emit, series_values

SPEEDS = (0.5, 2.0, 3.5, 5.0)


def test_fig4(benchmark):
    data = benchmark.pedantic(
        lambda: fig4_throughput_vs_mobility(
            base=bench_base_config(), speeds=SPEEDS, seeds=bench_seeds()
        ),
        rounds=1,
        iterations=1,
    )
    emit(data, "fig04_throughput_vs_mobility.txt")

    refer = series_values(data, "REFER")
    overlay = series_values(data, "Kautz-overlay")
    # REFER: slight decrease only (within 5% of its low-mobility value).
    assert min(refer) > 0.95 * refer[0]
    # Kautz-overlay: the sharpest decline of all systems.
    overlay_drop = (overlay[0] - overlay[-1]) / overlay[0]
    for name in ("REFER", "DaTree", "D-DEAR"):
        values = series_values(data, name)
        drop = (values[0] - values[-1]) / values[0]
        assert overlay_drop >= drop
    # At high mobility REFER out-delivers the overlay.
    assert refer[-1] > overlay[-1]
