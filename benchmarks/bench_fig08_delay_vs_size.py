"""Figure 8: delay versus network size (Section IV-C).

Paper shape: REFER's delay stays nearly constant as the network grows
(fixed-size cells, topology consistency); D-DEAR increases moderately;
DaTree and Kautz-overlay increase sharply, with the overlay far worst.
"""

from repro.experiments.figures import fig8_delay_vs_size

from _common import bench_base_config, bench_seeds, emit, series_values

SIZES = (100, 200, 300, 400)


def test_fig8(benchmark):
    data = benchmark.pedantic(
        lambda: fig8_delay_vs_size(
            base=bench_base_config(), sizes=SIZES, seeds=bench_seeds()
        ),
        rounds=1,
        iterations=1,
    )
    emit(data, "fig08_delay_vs_size.txt")

    refer = series_values(data, "REFER")
    datree = series_values(data, "DaTree")
    overlay = series_values(data, "Kautz-overlay")
    # REFER: nearly constant across a 4x size range.
    assert max(refer) < 2.0 * min(refer)
    # DaTree and the overlay grow with size.
    assert datree[-1] > 1.5 * datree[0]
    assert overlay[-1] > 2.0 * overlay[0]
    # The overlay's delay dwarfs REFER's at scale.
    assert overlay[-1] > 5 * refer[-1]
    # At n = 400, REFER beats DaTree (the paper's crossover happened
    # already by n = 200).
    assert refer[-1] < datree[-1]
