"""Parallel-campaign gate: the supervisor must earn its processes.

One fig4 campaign grid (4 systems x sweep points x seeds), run twice:
once through the classic in-process serial loop and once through the
supervised worker pool (:mod:`repro.experiments.parallel`) at
``REFER_BENCH_PAR_WORKERS`` workers.  The gate is twofold:

* **identical output** — the merged parallel figure must equal the
  serial figure exactly (the merge is keyed on job identity, so
  process scheduling cannot leak into the numbers);
* **speed** — wall-clock speedup must be at least
  ``REFER_BENCH_PAR_GATE`` (default 1.8x) at 4 workers.  Skipped on
  hosts with fewer than 4 CPUs, where the pool cannot physically win.

Knobs:

* ``REFER_BENCH_PAR_SIM_TIME`` measured seconds per scenario (default
  12; long enough that one job amortises its worker spawn + import)
* ``REFER_BENCH_PAR_POINTS``   fig4 sweep points (default ``2,6``)
* ``REFER_BENCH_PAR_SEEDS``    seeds per point (default 1)
* ``REFER_BENCH_PAR_WORKERS``  pool size (default 4)
* ``REFER_BENCH_PAR_GATE``     speedup floor (default 1.8)
"""

import json
import os
import time

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import parallel_campaign

from _common import RESULTS_DIR, bench_engine

SIM_TIME = float(os.environ.get("REFER_BENCH_PAR_SIM_TIME", "12"))
POINTS = tuple(
    float(p)
    for p in os.environ.get("REFER_BENCH_PAR_POINTS", "2,6").split(",")
)
SEEDS = int(os.environ.get("REFER_BENCH_PAR_SEEDS", "1"))
WORKERS = int(os.environ.get("REFER_BENCH_PAR_WORKERS", "4"))
GATE = float(os.environ.get("REFER_BENCH_PAR_GATE", "1.8"))


def _base():
    return ScenarioConfig(
        sim_time=SIM_TIME,
        warmup=max(2.0, SIM_TIME / 10.0),
        rate_pps=8.0,
        engine=bench_engine(),
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"parallel speedup gate needs >= {WORKERS} CPUs",
)
def test_parallel_campaign_speedup_gate():
    base = _base()
    kwargs = dict(seeds=SEEDS, figures=["fig4"], sweeps={"fig4": POINTS})

    start = time.perf_counter()
    serial = run_campaign(base, **kwargs)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = parallel_campaign(base, workers=WORKERS, **kwargs)
    parallel_s = time.perf_counter() - start

    assert parallel.failed_jobs == ()
    assert parallel.figures["fig4"] == serial.figures["fig4"], (
        "parallel campaign perturbed the merged figure"
    )

    speedup = serial_s / parallel_s
    jobs = len(serial.figures["fig4"].series) * len(POINTS) * SEEDS
    table = "\n".join(
        [
            "parallel campaign: fig4 grid, serial vs %d workers "
            "(%d jobs, sim_time=%gs)" % (WORKERS, jobs, SIM_TIME),
            "",
            "  serial    %8.2f s" % serial_s,
            "  parallel  %8.2f s" % parallel_s,
            "  speedup   %8.2fx  (gate %.1fx)" % (speedup, GATE),
            "  merged figure byte-identical to serial",
        ]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_campaign.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    (RESULTS_DIR / "BENCH_parallel_campaign.json").write_text(
        json.dumps(
            {
                "gate": GATE,
                "workers": WORKERS,
                "jobs": jobs,
                "sim_time_s": SIM_TIME,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": speedup,
                "identical": True,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print("\n" + table)
    assert speedup >= GATE, (
        f"parallel campaign only {speedup:.2f}x the serial loop "
        f"at {WORKERS} workers (gate {GATE:.1f}x)"
    )
