"""Resilience campaign: recovery time and degradation under chaos.

Sweeps fault class x intensity for all four systems with the chaos
subsystem (``repro.chaos``) and reports, per cell, the delivery ratio
under fault, the windowed delivery trough, the mean time-to-recovery,
and the communication-phase flooding energy.  The headline claim under
test: REFER recovers through **local** repair — zero route-discovery
floods — while the tree/cluster baselines pay a flood per repair.

Effort knobs are the shared bench environment variables
(``REFER_BENCH_SEEDS``, ``REFER_BENCH_SIM_TIME``, ``REFER_BENCH_RATE``)
plus ``REFER_BENCH_FAULT_CLASSES`` (comma-separated subset of the
default rotation/permanent/blackout/battery).
"""

import os

from repro.experiments.resilience import (
    DEFAULT_FAULT_CLASSES,
    format_resilience,
    resilience_campaign,
)

from _common import RESULTS_DIR, bench_base_config, bench_seeds

FLOODING_SYSTEMS = ("DaTree", "D-DEAR", "Kautz-overlay")


def _fault_classes():
    raw = os.environ.get("REFER_BENCH_FAULT_CLASSES", "")
    if not raw:
        return DEFAULT_FAULT_CLASSES
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def test_resilience_recovery(benchmark):
    base = bench_base_config()
    classes = _fault_classes()

    def sweep():
        return resilience_campaign(
            base,
            fault_classes=classes,
            intensities=(2, 6),
            seeds=bench_seeds(),
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_resilience(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "resilience_recovery.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    print("\n" + table)

    refer = [c for c in result.cells if c.system == "REFER"]
    assert refer, "campaign must cover REFER"
    assert len(result.fault_classes()) >= 4 or len(classes) < 4

    # REFER repairs locally: no route-discovery floods, ever.
    assert all(c.flood_comm_energy_j == 0.0 for c in refer)
    # Every flooding baseline pays comm-phase flood energy under at
    # least one fault class; trees pay under all of them.
    for system in FLOODING_SYSTEMS:
        cells = [c for c in result.cells if c.system == system]
        assert any(c.flood_comm_energy_j > 0.0 for c in cells), system
    # REFER keeps delivering through every fault class, and recovers
    # from the faults it can observe.
    assert all(c.delivery_ratio > 0.5 for c in refer)
    assert all(c.recovered_fraction > 0.5 for c in refer)
    # Recovery happens in bounded time (well inside the fault period).
    assert all(c.recovery_time_s <= 10.0 for c in refer if c.recovery_time_s)
