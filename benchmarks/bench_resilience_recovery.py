"""Resilience campaign: recovery time and degradation under chaos.

Sweeps fault class x intensity for all four systems with the chaos
subsystem (``repro.chaos``) and reports, per cell, the delivery ratio
under fault, the windowed delivery trough, the mean time-to-recovery,
and the communication-phase flooding energy.  The headline claim under
test: REFER recovers through **local** repair — zero route-discovery
floods — while the tree/cluster baselines pay a flood per repair.

A second REFER-only sweep runs with the self-healing stack
(:mod:`repro.recovery`): failures detected from heartbeat evidence
instead of omnisciently, per-hop ARQ, CAN zone takeover.  The bench
asserts message-grounded recovery stays within 2x the omniscient
baseline's time-to-recovery (modulo the probe-window floor) while
reporting real detection latency per fault class.

Effort knobs are the shared bench environment variables
(``REFER_BENCH_SEEDS``, ``REFER_BENCH_SIM_TIME``, ``REFER_BENCH_RATE``)
plus ``REFER_BENCH_FAULT_CLASSES`` (comma-separated subset of the
default rotation/permanent/blackout/battery).
"""

import os

from repro.experiments.resilience import (
    DEFAULT_FAULT_CLASSES,
    format_resilience,
    resilience_campaign,
)
from repro.recovery import RecoveryConfig

from _common import RESULTS_DIR, bench_base_config, bench_seeds

FLOODING_SYSTEMS = ("DaTree", "D-DEAR", "Kautz-overlay")


def _fault_classes():
    raw = os.environ.get("REFER_BENCH_FAULT_CLASSES", "")
    if not raw:
        return DEFAULT_FAULT_CLASSES
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def test_resilience_recovery(benchmark):
    base = bench_base_config()
    classes = _fault_classes()

    def sweep():
        omniscient = resilience_campaign(
            base,
            fault_classes=classes,
            intensities=(2, 6),
            seeds=bench_seeds(),
        )
        healed = resilience_campaign(
            base,
            systems=("REFER",),
            fault_classes=classes,
            intensities=(2, 6),
            seeds=bench_seeds(),
            recovery=RecoveryConfig(),
        )
        return omniscient, healed

    result, healed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = (
        format_resilience(result)
        + "\n\nREFER + self-healing stack (message-grounded detection)\n"
        + format_resilience(healed)
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "resilience_recovery.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    print("\n" + table)

    refer = [c for c in result.cells if c.system == "REFER"]
    assert refer, "campaign must cover REFER"
    assert len(result.fault_classes()) >= 4 or len(classes) < 4

    # REFER repairs locally: no route-discovery floods, ever — flood
    # energy is exactly 0.0 by construction, not approximately.
    # referlint: disable-next-line=REF004
    assert all(c.flood_comm_energy_j == 0.0 for c in refer)
    # Every flooding baseline pays comm-phase flood energy under at
    # least one fault class; trees pay under all of them.
    for system in FLOODING_SYSTEMS:
        cells = [c for c in result.cells if c.system == system]
        assert any(c.flood_comm_energy_j > 0.0 for c in cells), system
    # REFER keeps delivering through every fault class, and recovers
    # from the faults it can observe.
    assert all(c.delivery_ratio > 0.5 for c in refer)
    assert all(c.recovered_fraction > 0.5 for c in refer)
    # Recovery happens in bounded time (well inside the fault period).
    assert all(c.recovery_time_s <= 10.0 for c in refer if c.recovery_time_s)

    # Message-grounded self-healing: paying for real detection (probe
    # rounds, suspicion threshold) must cost at most 2x the omniscient
    # baseline's time-to-recovery.  The floor term covers cells whose
    # omniscient recovery is quantised to zero probe windows.
    for cell in healed.cells:
        omni = result.cell(cell.system, cell.fault_class, cell.intensity)
        floor = base.probe_window
        assert cell.recovery_time_s <= 2.0 * max(
            omni.recovery_time_s, floor
        ), (
            f"{cell.fault_class}/{cell.intensity}: healed "
            f"{cell.recovery_time_s:.2f}s vs omniscient "
            f"{omni.recovery_time_s:.2f}s"
        )
        assert cell.delivery_ratio > 0.5
        assert cell.false_positive_rate <= 0.5
    # At least one fault class exhibits genuine (non-zero) detection
    # latency — detection is not free when it is message-grounded.
    assert any(c.detection_latency_s > 0.0 for c in healed.cells)
