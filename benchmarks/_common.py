"""Shared plumbing for the figure-regeneration benchmarks.

Every bench:

* reads its effort knobs from the environment —
  ``REFER_BENCH_SEEDS`` (default 2), ``REFER_BENCH_SIM_TIME`` (default
  30 s measured), ``REFER_BENCH_RATE`` (default 12 packets/s/source),
  ``REFER_BENCH_ENGINE`` (``fast`` by default — the engine goldens pin
  fast and reference byte-identical, so benches take the speed;
  ``reference`` opts back out), ``REFER_BENCH_WORKERS`` (default 0 =
  in-process; >0 routes campaign-shaped benches through the parallel
  supervisor);
* regenerates one evaluation figure via ``repro.experiments.figures``;
* prints the series table (also saved under ``benchmarks/results/``,
  with a machine-readable ``BENCH_<name>.json`` twin) so the rows the
  paper plots can be read off the bench output or scraped by tooling;
* asserts the figure's qualitative shape (who wins, what grows).

Point the knobs higher (e.g. ``REFER_BENCH_SEEDS=5
REFER_BENCH_SIM_TIME=120``) for tighter confidence intervals; the
defaults keep a full ``pytest benchmarks/ --benchmark-only`` run in the
tens of minutes on a laptop.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import FigureData
from repro.experiments.report import format_figure
from repro.sim.engine import EngineConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_seeds() -> int:
    return int(os.environ.get("REFER_BENCH_SEEDS", "2"))


def bench_engine() -> EngineConfig:
    """The engine the benches run on (default: every fast path on)."""
    name = os.environ.get("REFER_BENCH_ENGINE", "fast")
    if name == "fast":
        return EngineConfig.fast()
    if name == "reference":
        return EngineConfig.reference()
    raise ValueError(
        f"REFER_BENCH_ENGINE={name!r}: expected 'fast' or 'reference'"
    )


def bench_workers() -> int:
    """Worker processes for campaign-shaped benches (0 = in-process)."""
    return int(os.environ.get("REFER_BENCH_WORKERS", "0"))


def bench_base_config() -> ScenarioConfig:
    sim_time = float(os.environ.get("REFER_BENCH_SIM_TIME", "30"))
    rate = float(os.environ.get("REFER_BENCH_RATE", "12"))
    return ScenarioConfig(
        sim_time=sim_time,
        warmup=max(2.0, sim_time / 10.0),
        rate_pps=rate,
        engine=bench_engine(),
    )


def figure_to_dict(data: FigureData) -> dict:
    """The JSON-serialisable form of one regenerated figure."""
    return {
        "figure": data.figure,
        "title": data.title,
        "xlabel": data.xlabel,
        "ylabel": data.ylabel,
        "series": {
            system: [
                {
                    "x": p.x,
                    "mean": p.mean,
                    "ci95": p.ci95,
                    "samples": p.samples,
                }
                for p in points
            ]
            for system, points in data.series.items()
        },
    }


def emit(data: FigureData, filename: str) -> str:
    """Render, persist and print one regenerated figure.

    Writes the human table to ``results/<filename>`` and a
    machine-readable twin to ``results/BENCH_<stem>.json`` (sorted
    keys, so reruns of identical data are byte-identical).
    """
    table = format_figure(data)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(table + "\n", encoding="utf-8")
    stem = pathlib.Path(filename).stem
    (RESULTS_DIR / f"BENCH_{stem}.json").write_text(
        json.dumps(figure_to_dict(data), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("\n" + table)
    return table


def series_values(data: FigureData, system: str):
    return [p.mean for p in data.series[system]]
