"""Ablation: where does each system's energy actually go?

Section IV-D argues "message transmission dominates the influence on
the energy consumed due to less topology updates" for some systems and
the opposite for others.  With per-traffic-class accounting the claim
becomes measurable: split each system's lifetime energy into data
forwarding, control/repair, probing/keep-alives and flooding.
"""

import random

from repro.baselines import DaTreeSystem, DDearSystem, KautzOverlaySystem
from repro.core.system import ReferSystem
from repro.experiments.config import ScenarioConfig
from repro.experiments.metrics import MetricsCollector
from repro.experiments.workload import CbrWorkload
from repro.net.energy import Phase
from repro.net.network import WirelessNetwork
from repro.sim.core import Simulator
from repro.util.rng import RngStreams
from repro.wsan.deployment import plan_deployment
from repro.wsan.system import build_nodes

from _common import bench_base_config

KINDS = ("data", "control", "probe", "flood", "query")


def run_split(system_cls, config: ScenarioConfig):
    streams = RngStreams(config.seed)
    sim = Simulator()
    network = WirelessNetwork(sim, streams.stream("mac"))
    plan = plan_deployment(
        config.sensor_count, config.area_side, streams.stream("deployment")
    )
    build_nodes(
        network, plan, streams.stream("mobility"),
        sensor_max_speed=config.sensor_max_speed,
    )
    system = system_cls(network, plan, streams.stream("system"))
    network.set_phase(Phase.CONSTRUCTION)
    system.build()
    construction_kinds = dict(network.energy.kinds())
    network.set_phase(Phase.COMMUNICATION)
    system.start()
    metrics = MetricsCollector(sim, config.qos_deadline, config.warmup)
    workload = CbrWorkload(
        sim, system, metrics, streams.stream("workload"),
        rate_pps=config.rate_pps, packet_bytes=config.packet_bytes,
        qos_deadline=config.qos_deadline,
    )
    workload.start(0.0, config.end_time)
    sim.run_until(config.end_time + 2.0)
    system.stop()
    totals = network.energy.kinds()
    comm_kinds = {
        kind: totals.get(kind, 0.0) - construction_kinds.get(kind, 0.0)
        for kind in set(totals) | set(construction_kinds)
    }
    return system.name, comm_kinds


def test_energy_split(benchmark):
    config = bench_base_config().with_(sensor_max_speed=3.0, seed=1)

    def sweep():
        return [
            run_split(cls, config)
            for cls in (
                ReferSystem, DaTreeSystem, DDearSystem, KautzOverlaySystem
            )
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nCommunication-phase energy by traffic class (J):")
    header = f"{'system':14s}" + "".join(f"{k:>10s}" for k in KINDS)
    print(header)
    table = {}
    for name, kinds in results:
        table[name] = kinds
        row = f"{name:14s}" + "".join(
            f"{kinds.get(k, 0.0):10.0f}" for k in KINDS
        )
        print(row)

    def share(name, kind):
        total = sum(v for v in table[name].values() if v > 0)
        return table[name].get(kind, 0.0) / total if total else 0.0

    # REFER: data transmission dominates; floods are zero by design —
    # exactly 0.0 (no flood events at all), not approximately.
    # referlint: disable-next-line=REF004
    assert table["REFER"].get("flood", 0.0) == 0.0
    assert share("REFER", "data") > 0.5
    # DaTree under mobility: repair flooding dominates its budget.
    assert share("DaTree", "flood") > share("REFER", "probe")
    assert share("DaTree", "flood") > 0.3
    # The overlay spends heavily on both long data paths and floods.
    assert share("Kautz-overlay", "data") + share(
        "Kautz-overlay", "flood"
    ) > 0.5
