"""Figure 9: communication energy versus network size (Section IV-D).

Paper shape: REFER's energy rises only marginally with size; DaTree,
D-DEAR and Kautz-overlay rise rapidly, with DaTree above D-DEAR (all
sensors maintain links, not just heads) and above Kautz-overlay (the
overlay needs no source retransmissions).
"""

from repro.experiments.figures import fig9_energy_vs_size

from _common import bench_base_config, bench_seeds, emit, series_values

SIZES = (100, 200, 300, 400)


def test_fig9(benchmark):
    data = benchmark.pedantic(
        lambda: fig9_energy_vs_size(
            base=bench_base_config(), sizes=SIZES, seeds=bench_seeds()
        ),
        rounds=1,
        iterations=1,
    )
    emit(data, "fig09_energy_vs_size.txt")

    refer = series_values(data, "REFER")
    datree = series_values(data, "DaTree")
    ddear = series_values(data, "D-DEAR")
    # REFER: marginal change across the size sweep, cheapest throughout.
    assert max(refer) < 2.0 * min(refer)
    for name in ("DaTree", "D-DEAR", "Kautz-overlay"):
        values = series_values(data, name)
        for i in range(len(SIZES)):
            assert refer[i] < values[i], (name, i)
    # DaTree grows fastest and exceeds D-DEAR at scale.
    assert datree[-1] > 5 * datree[0]
    assert datree[-1] > ddear[-1]
    # D-DEAR also grows with size.
    assert ddear[-1] > 1.5 * ddear[0]
