"""Ablation: network lifetime under finite batteries.

The paper argues energy-efficiency with unbounded batteries (Joules
consumed).  This bench closes the loop: give every sensor the same
finite battery and measure how long each system keeps delivering.
REFER's lower per-event cost and its battery-aware node replacement
(low-battery Kautz nodes step down for fresh candidates) should buy it
a longer useful life than the flood-repairing baselines.
"""

import random

from repro.baselines import DaTreeSystem, DDearSystem
from repro.core.system import ReferSystem
from repro.net.energy import Phase
from repro.net.network import WirelessNetwork
from repro.net.packet import Packet, PacketKind
from repro.sim.core import Simulator
from repro.wsan.deployment import plan_deployment
from repro.wsan.system import build_nodes

BATTERY_J = 1500.0          # ~750 transmissions per sensor
HORIZON = 120.0
REPORT_PERIOD = 0.25        # 4 events/s network-wide
WINDOW = 10.0


def run_lifetime(system_cls, seed=3):
    rng = random.Random(seed)
    sim = Simulator()
    network = WirelessNetwork(sim, rng)
    plan = plan_deployment(200, 500.0, rng)
    build_nodes(
        network, plan, rng, sensor_max_speed=1.5,
        battery_joules=BATTERY_J,
    )
    system = system_cls(network, plan, rng)
    network.set_phase(Phase.CONSTRUCTION)
    system.build()
    network.set_phase(Phase.COMMUNICATION)
    system.start()

    delivered_per_window = []
    state = {"delivered": 0}

    def emit():
        usable = [
            s for s in system.sensor_ids if network.node(s).usable
        ]
        if usable:
            source = rng.choice(usable)
            system.send_event(
                source,
                Packet(PacketKind.DATA, 1000, source, None, sim.now,
                       deadline=0.6),
                on_delivered=lambda p: state.__setitem__(
                    "delivered", state["delivered"] + 1
                ),
            )
        if sim.now < HORIZON:
            sim.schedule(REPORT_PERIOD, emit)

    def snapshot():
        delivered_per_window.append(state["delivered"])
        state["delivered"] = 0
        if sim.now < HORIZON:
            sim.schedule(WINDOW, snapshot)

    sim.schedule(0.0, emit)
    sim.schedule(WINDOW, snapshot)
    sim.run_until(HORIZON + 2.0)
    system.stop()

    dead = sum(
        1
        for s in system.sensor_ids
        if network.node(s).battery_exhausted
    )
    per_window_max = WINDOW / REPORT_PERIOD
    alive_windows = sum(
        1
        for count in delivered_per_window
        if count >= 0.5 * per_window_max
    )
    return {
        "system": system.name,
        "dead_sensors": dead,
        "alive_windows": alive_windows,
        "windows": len(delivered_per_window),
        "delivered_total": sum(delivered_per_window),
    }


def test_network_lifetime(benchmark):
    results = benchmark.pedantic(
        lambda: [
            run_lifetime(cls)
            for cls in (ReferSystem, DDearSystem, DaTreeSystem)
        ],
        rounds=1,
        iterations=1,
    )
    print("\nNetwork lifetime with 1.5 kJ sensor batteries:")
    print(
        f"{'system':10s} {'dead sensors':>13s} {'healthy windows':>16s}"
        f" {'delivered':>10s}"
    )
    for r in results:
        print(
            f"{r['system']:10s} {r['dead_sensors']:13d}"
            f" {r['alive_windows']:>7d}/{r['windows']:<8d}"
            f" {r['delivered_total']:10d}"
        )
    refer, ddear, datree = results
    # REFER exhausts the fewest sensors and stays healthy longest.
    assert refer["dead_sensors"] <= ddear["dead_sensors"]
    assert refer["dead_sensors"] <= datree["dead_sensors"]
    assert refer["alive_windows"] >= datree["alive_windows"]
    assert refer["delivered_total"] >= 0.9 * datree["delivered_total"]
