"""Ablation: ID-based routing (Theorem 3.8) vs route generation (DFTR).

The paper's key efficiency claim: REFER finds alternative paths and
their lengths "simply based on node IDs", where previous Kautz systems
run a route-generation algorithm (equivalent to growing a tree).  This
bench times both on the same node pairs and asserts the speedup; the
energy analogue is the packet cost that route generation would incur,
which Figure 10/5 benches capture at the system level.
"""

import random

from repro.kautz.disjoint import successor_table
from repro.kautz.graph import KautzGraph
from repro.kautz.routing import route_generation_paths


def sample_pairs(degree, diameter, count, seed=7):
    graph = KautzGraph(degree, diameter)
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        u = graph.random_node(rng)
        v = graph.random_node(rng)
        if u != v:
            pairs.append((u, v))
    return pairs


PAIRS = sample_pairs(4, 4, 64)


def test_theorem_38_lookup(benchmark):
    def lookup_all():
        return [successor_table(u, v) for u, v in PAIRS]

    tables = benchmark(lookup_all)
    assert all(len(t) == 4 for t in tables)


def test_route_generation_baseline(benchmark):
    def generate_all():
        return [route_generation_paths(u, v) for u, v in PAIRS]

    routes = benchmark(generate_all)
    assert all(len(r) >= 1 for r in routes)


def test_lookup_is_much_cheaper():
    """Direct comparison on one pass (the bench fixtures above give
    the precise timings; this guards the ordering in plain pytest)."""
    import time

    start = time.perf_counter()
    for _ in range(10):
        for u, v in PAIRS:
            successor_table(u, v)
    lookup = time.perf_counter() - start

    start = time.perf_counter()
    for u, v in PAIRS:
        route_generation_paths(u, v)
    generation = time.perf_counter() - start

    # 10 lookup passes still cost far less than 1 generation pass.
    assert lookup < generation
